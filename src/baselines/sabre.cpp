#include "sabre.hpp"

#include <algorithm>
#include <stdexcept>

#include "ir/dag.hpp"
#include "obs/observer.hpp"

namespace toqm::baselines {

namespace {

class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : _state(seed) {}

    std::uint64_t
    next()
    {
        _state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = _state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    int
    below(int bound)
    {
        return static_cast<int>(next() % static_cast<std::uint64_t>(bound));
    }

  private:
    std::uint64_t _state;
};

/** One SABRE routing pass over a circuit. */
class Pass
{
  public:
    Pass(const ir::Circuit &circuit, const arch::CouplingGraph &graph,
         const SabreConfig &config, std::vector<int> l2p, bool emit)
        : _circuit(circuit), _dag(circuit), _graph(graph),
          _config(config), _l2p(std::move(l2p)), _emit(emit),
          _physical(graph.numQubits(), circuit.name() + "_sabre")
    {
        _p2l.assign(static_cast<size_t>(graph.numQubits()), -1);
        for (size_t l = 0; l < _l2p.size(); ++l)
            _p2l[static_cast<size_t>(_l2p[l])] = static_cast<int>(l);
        _decay.assign(static_cast<size_t>(graph.numQubits()), 1.0);
        _pending.assign(static_cast<size_t>(circuit.size()), 0);
        for (int i = 0; i < circuit.size(); ++i)
            _pending[static_cast<size_t>(i)] =
                static_cast<int>(_dag.preds(i).size());
        for (int i : _dag.roots())
            _ready.push_back(i);
    }

    /** @return false if the swap budget blew up (pathological). */
    bool
    run()
    {
        const long swap_budget = 16l * _circuit.size() + 4096;
        retireExecutable();
        while (_done < _circuit.size()) {
            if (_swaps > swap_budget)
                return false;
            applyBestSwap();
            retireExecutable();
        }
        return true;
    }

    const std::vector<int> &layout() const { return _l2p; }

    ir::Circuit takePhysical() { return std::move(_physical); }

    int swapCount() const { return _swaps; }

  private:
    const ir::Circuit &_circuit;
    ir::DependencyDag _dag;
    const arch::CouplingGraph &_graph;
    const SabreConfig &_config;
    std::vector<int> _l2p;
    bool _emit;
    ir::Circuit _physical;
    std::vector<int> _p2l;
    std::vector<double> _decay;
    std::vector<int> _pending;
    std::vector<int> _ready; ///< dependence-ready, unretired gates
    int _done = 0;
    int _swaps = 0;

    bool
    executable(int gi) const
    {
        const ir::Gate &g = _circuit.gate(gi);
        if (g.numQubits() < 2 || g.isBarrier())
            return true;
        return _graph.adjacent(_l2p[static_cast<size_t>(g.qubit(0))],
                               _l2p[static_cast<size_t>(g.qubit(1))]);
    }

    void
    retire(int gi)
    {
        if (_emit) {
            const ir::Gate &g = _circuit.gate(gi);
            ir::Gate copy = g;
            std::vector<int> phys;
            phys.reserve(g.qubits().size());
            for (int q : g.qubits())
                phys.push_back(_l2p[static_cast<size_t>(q)]);
            copy.setQubits(std::move(phys));
            _physical.add(std::move(copy));
        }
        ++_done;
        for (int s : _dag.succs(gi)) {
            if (--_pending[static_cast<size_t>(s)] == 0)
                _ready.push_back(s);
        }
    }

    void
    retireExecutable()
    {
        bool progress = true;
        while (progress) {
            progress = false;
            for (size_t k = 0; k < _ready.size(); ++k) {
                const int gi = _ready[k];
                if (!executable(gi))
                    continue;
                _ready.erase(_ready.begin() +
                             static_cast<std::ptrdiff_t>(k));
                --k;
                retire(gi);
                progress = true;
            }
        }
    }

    /** Extended (lookahead) set: successors of the front layer. */
    std::vector<int>
    extendedSet() const
    {
        std::vector<int> out;
        std::vector<int> frontier = _ready;
        size_t cursor = 0;
        while (cursor < frontier.size() &&
               static_cast<int>(out.size()) < _config.extendedSetSize) {
            const int gi = frontier[cursor++];
            for (int s : _dag.succs(gi)) {
                frontier.push_back(s);
                if (_circuit.gate(s).numQubits() == 2 &&
                    !_circuit.gate(s).isBarrier()) {
                    out.push_back(s);
                    if (static_cast<int>(out.size()) >=
                        _config.extendedSetSize) {
                        break;
                    }
                }
            }
        }
        return out;
    }

    double
    distanceSum(const std::vector<int> &gates,
                const std::vector<int> &l2p) const
    {
        double sum = 0.0;
        for (int gi : gates) {
            const ir::Gate &g = _circuit.gate(gi);
            if (g.numQubits() != 2 || g.isBarrier())
                continue;
            sum += _graph.distance(
                l2p[static_cast<size_t>(g.qubit(0))],
                l2p[static_cast<size_t>(g.qubit(1))]);
        }
        return sum;
    }

    void
    applyBestSwap()
    {
        // Candidate swaps touch an operand position of the front
        // layer's two-qubit gates.
        std::vector<char> involved(
            static_cast<size_t>(_graph.numQubits()), 0);
        int front_2q = 0;
        for (int gi : _ready) {
            const ir::Gate &g = _circuit.gate(gi);
            if (g.numQubits() != 2 || g.isBarrier())
                continue;
            ++front_2q;
            involved[static_cast<size_t>(
                _l2p[static_cast<size_t>(g.qubit(0))])] = 1;
            involved[static_cast<size_t>(
                _l2p[static_cast<size_t>(g.qubit(1))])] = 1;
        }
        if (front_2q == 0) {
            // Only blocked pseudo-ops remain; retire them directly.
            throw std::logic_error("SABRE: front layer empty but "
                                   "gates pending");
        }

        const std::vector<int> extended = extendedSet();
        std::vector<int> front;
        for (int gi : _ready) {
            if (_circuit.gate(gi).numQubits() == 2)
                front.push_back(gi);
        }

        double best_score = 0.0;
        int best_p0 = -1, best_p1 = -1;
        std::vector<int> trial = _l2p;
        for (const auto &[p0, p1] : _graph.edges()) {
            if (!involved[static_cast<size_t>(p0)] &&
                !involved[static_cast<size_t>(p1)]) {
                continue;
            }
            // Apply the trial swap.
            const int l0 = _p2l[static_cast<size_t>(p0)];
            const int l1 = _p2l[static_cast<size_t>(p1)];
            if (l0 >= 0)
                trial[static_cast<size_t>(l0)] = p1;
            if (l1 >= 0)
                trial[static_cast<size_t>(l1)] = p0;

            double score =
                distanceSum(front, trial) /
                static_cast<double>(front.size());
            if (!extended.empty()) {
                score += _config.extendedSetWeight *
                         distanceSum(extended, trial) /
                         static_cast<double>(extended.size());
            }
            score *= std::max(_decay[static_cast<size_t>(p0)],
                              _decay[static_cast<size_t>(p1)]);

            // Undo the trial swap.
            if (l0 >= 0)
                trial[static_cast<size_t>(l0)] = p0;
            if (l1 >= 0)
                trial[static_cast<size_t>(l1)] = p1;

            if (best_p0 < 0 || score < best_score) {
                best_score = score;
                best_p0 = p0;
                best_p1 = p1;
            }
        }

        // Commit the winner.
        const int l0 = _p2l[static_cast<size_t>(best_p0)];
        const int l1 = _p2l[static_cast<size_t>(best_p1)];
        _p2l[static_cast<size_t>(best_p0)] = l1;
        _p2l[static_cast<size_t>(best_p1)] = l0;
        if (l0 >= 0)
            _l2p[static_cast<size_t>(l0)] = best_p1;
        if (l1 >= 0)
            _l2p[static_cast<size_t>(l1)] = best_p0;
        if (_emit)
            _physical.addSwap(best_p0, best_p1);
        ++_swaps;
        _decay[static_cast<size_t>(best_p0)] += _config.decayDelta;
        _decay[static_cast<size_t>(best_p1)] += _config.decayDelta;
        if (_swaps % _config.decayResetInterval == 0)
            std::fill(_decay.begin(), _decay.end(), 1.0);
    }
};

/** The reverse of a circuit (gate order flipped; kinds irrelevant
 *  to routing are preserved). */
ir::Circuit
reversed(const ir::Circuit &circuit)
{
    ir::Circuit out(circuit.numQubits(), circuit.name() + "_rev");
    for (int i = circuit.size() - 1; i >= 0; --i)
        out.add(circuit.gate(i));
    return out;
}

} // namespace

SabreMapper::SabreMapper(const arch::CouplingGraph &graph,
                         SabreConfig config)
    : _graph(graph), _config(config)
{}

SabreResult
SabreMapper::map(const ir::Circuit &logical,
                 std::optional<std::vector<int>> initial_layout) const
{
    const obs::PhaseScope obs_phase("search");
    const ir::Circuit clean = logical.withoutSwapsAndBarriers();
    if (clean.numQubits() > _graph.numQubits())
        throw std::invalid_argument("SABRE: circuit wider than device");

    std::vector<int> layout;
    if (initial_layout) {
        layout = *initial_layout;
    } else {
        // Random injection, then bidirectional refinement passes.
        layout.resize(static_cast<size_t>(clean.numQubits()));
        std::vector<int> perm(static_cast<size_t>(_graph.numQubits()));
        for (int p = 0; p < _graph.numQubits(); ++p)
            perm[static_cast<size_t>(p)] = p;
        SplitMix64 rng(_config.seed);
        for (int i = _graph.numQubits() - 1; i > 0; --i)
            std::swap(perm[static_cast<size_t>(i)],
                      perm[static_cast<size_t>(rng.below(i + 1))]);
        std::copy_n(perm.begin(), layout.size(), layout.begin());

        const ir::Circuit rev = reversed(clean);
        for (int pass = 0; pass < _config.mappingPasses; ++pass) {
            Pass fwd(clean, _graph, _config, layout, /*emit=*/false);
            if (!fwd.run())
                break;
            Pass bwd(rev, _graph, _config, fwd.layout(),
                     /*emit=*/false);
            if (!bwd.run())
                break;
            layout = bwd.layout();
        }
    }

    SabreResult result;
    Pass final_pass(clean, _graph, _config, layout, /*emit=*/true);
    if (!final_pass.run())
        return result;
    result.success = true;
    result.swapCount = final_pass.swapCount();
    ir::Circuit phys = final_pass.takePhysical();
    const auto final_layout = ir::propagateLayout(phys, layout);
    result.mapped =
        ir::MappedCircuit(std::move(phys), layout, final_layout);
    return result;
}

} // namespace toqm::baselines
