#include "zulehner.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "obs/observer.hpp"
#include "obs/search_probe.hpp"
#include "search/engine.hpp"
#include "search/frontier.hpp"

namespace toqm::baselines {

namespace {

class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : _state(seed) {}

    std::uint64_t
    next()
    {
        _state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = _state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    int
    below(int bound)
    {
        return static_cast<int>(next() % static_cast<std::uint64_t>(bound));
    }

  private:
    std::uint64_t _state;
};

/** A layer: two-qubit gates on pairwise-disjoint logical qubits. */
using Layer = std::vector<int>; // gate indices

/** A* state: a layout plus the swaps that produced it. */
struct AStarNode
{
    std::vector<int> l2p;
    std::vector<std::pair<int, int>> swaps;
    int g = 0; ///< swaps so far
    int h = 0;
};

struct AStarOrder
{
    bool
    operator()(const AStarNode &a, const AStarNode &b) const
    {
        if (a.g + a.h != b.g + b.h)
            return a.g + a.h > b.g + b.h;
        return a.h > b.h;
    }
};

} // namespace

ZulehnerMapper::ZulehnerMapper(const arch::CouplingGraph &graph,
                               ZulehnerConfig config)
    : _graph(graph), _config(config)
{}

ZulehnerResult
ZulehnerMapper::map(const ir::Circuit &logical,
                    std::optional<std::vector<int>> initial_layout) const
{
    const search::Stopwatch stopwatch;
    const obs::PhaseScope obs_phase("search");
    obs::SearchProbe probe("zulehner");
    // No NodePool here: the guard watches the deadline and the
    // cancellation flag only.
    search::ResourceGuard guard(_config.guard, nullptr);
    const ir::Circuit clean = logical.withoutSwapsAndBarriers();
    const int nl = clean.numQubits();
    const int np = _graph.numQubits();
    if (nl > np)
        throw std::invalid_argument("Zulehner: circuit wider than device");

    std::vector<int> l2p;
    if (initial_layout) {
        l2p = *initial_layout;
    } else {
        std::vector<int> perm(static_cast<size_t>(np));
        for (int p = 0; p < np; ++p)
            perm[static_cast<size_t>(p)] = p;
        SplitMix64 rng(_config.seed);
        for (int i = np - 1; i > 0; --i)
            std::swap(perm[static_cast<size_t>(i)],
                      perm[static_cast<size_t>(rng.below(i + 1))]);
        l2p.assign(perm.begin(), perm.begin() + nl);
    }
    std::vector<int> p2l(static_cast<size_t>(np), -1);
    for (int l = 0; l < nl; ++l)
        p2l[static_cast<size_t>(l2p[static_cast<size_t>(l)])] = l;

    ZulehnerResult result;
    ir::Circuit phys(np, clean.name() + "_zulehner");
    const std::vector<int> initial = l2p;

    // Excess-distance sum of a layer under a layout.
    const auto excess = [&](const Layer &layer,
                            const std::vector<int> &layout) {
        int total = 0;
        for (int gi : layer) {
            const ir::Gate &g = clean.gate(gi);
            total += std::max(
                _graph.distance(
                    layout[static_cast<size_t>(g.qubit(0))],
                    layout[static_cast<size_t>(g.qubit(1))]) -
                    1,
                0);
        }
        return total;
    };

    // Route one layer: find swaps making every gate adjacent.
    const auto route_layer = [&](const Layer &layer) {
        if (excess(layer, l2p) == 0)
            return;

        // Once the guard has tripped, skip the per-layer A* entirely
        // and degrade every remaining layer to greedy routing.
        const bool degraded = guard.stop() != search::StopReason::None;

        // A* over layouts, cost = swap count; the open set reuses
        // the search kernel's heap frontier.
        search::BestFirstFrontier<AStarNode, AStarOrder> open;
        std::map<std::vector<int>, int> seen;
        AStarNode start;
        start.l2p = l2p;
        start.h = (excess(layer, l2p) + 1) / 2;
        open.push(start);
        seen[start.l2p] = 0;

        std::uint64_t popped = 0;
        bool solved = false;
        while (!degraded && !open.empty()) {
            AStarNode node = open.pop();
            if (++popped > _config.perLayerNodeBudget)
                break;
            if (guard.poll() != search::StopReason::None)
                break; // degrade this and all remaining layers
            ++result.stats.expanded;
            probe.onExpansion(result.stats.expanded,
                              static_cast<double>(node.g + node.h),
                              open.size(), 0, 0);
            if (excess(layer, node.l2p) == 0) {
                // Commit the swap sequence.
                for (const auto &[p0, p1] : node.swaps) {
                    phys.addSwap(p0, p1);
                    const int a = p2l[static_cast<size_t>(p0)];
                    const int b = p2l[static_cast<size_t>(p1)];
                    p2l[static_cast<size_t>(p0)] = b;
                    p2l[static_cast<size_t>(p1)] = a;
                    if (a >= 0)
                        l2p[static_cast<size_t>(a)] = p1;
                    if (b >= 0)
                        l2p[static_cast<size_t>(b)] = p0;
                    ++result.swapCount;
                }
                solved = true;
                break;
            }
            for (const auto &[p0, p1] : _graph.edges()) {
                AStarNode child;
                child.l2p = node.l2p;
                // Swap the occupants of p0/p1 in the trial layout.
                int a = -1, b = -1;
                for (int l = 0; l < nl; ++l) {
                    if (child.l2p[static_cast<size_t>(l)] == p0)
                        a = l;
                    else if (child.l2p[static_cast<size_t>(l)] == p1)
                        b = l;
                }
                if (a < 0 && b < 0)
                    continue;
                if (a >= 0)
                    child.l2p[static_cast<size_t>(a)] = p1;
                if (b >= 0)
                    child.l2p[static_cast<size_t>(b)] = p0;
                child.g = node.g + 1;
                const auto it = seen.find(child.l2p);
                if (it != seen.end() && it->second <= child.g)
                    continue;
                seen[child.l2p] = child.g;
                child.h = (excess(layer, child.l2p) + 1) / 2;
                child.swaps = node.swaps;
                child.swaps.emplace_back(p0, p1);
                ++result.stats.generated;
                open.push(std::move(child));
                result.stats.maxQueueSize =
                    std::max(result.stats.maxQueueSize,
                             static_cast<std::uint64_t>(open.size()));
            }
        }

        if (solved)
            return;

        // Greedy fallback: walk each gate's operands together along
        // a shortest path.
        ++result.greedyFallbacks;
        for (int gi : layer) {
            const ir::Gate &g = clean.gate(gi);
            while (_graph.distance(
                       l2p[static_cast<size_t>(g.qubit(0))],
                       l2p[static_cast<size_t>(g.qubit(1))]) > 1) {
                const int p0 = l2p[static_cast<size_t>(g.qubit(0))];
                const int p1 = l2p[static_cast<size_t>(g.qubit(1))];
                // Move q0 one hop toward q1.
                int step = -1;
                for (int nbr : _graph.neighbors(p0)) {
                    if (_graph.distance(nbr, p1) ==
                        _graph.distance(p0, p1) - 1) {
                        step = nbr;
                        break;
                    }
                }
                phys.addSwap(p0, step);
                const int a = p2l[static_cast<size_t>(p0)];
                const int b = p2l[static_cast<size_t>(step)];
                p2l[static_cast<size_t>(p0)] = b;
                p2l[static_cast<size_t>(step)] = a;
                if (a >= 0)
                    l2p[static_cast<size_t>(a)] = step;
                if (b >= 0)
                    l2p[static_cast<size_t>(b)] = p0;
                ++result.swapCount;
            }
        }
    };

    // Partition into layers and emit.
    Layer layer;
    std::vector<char> layer_qubits(static_cast<size_t>(nl), 0);
    std::vector<int> pending_1q; // emitted with their positions

    const auto flush_layer = [&]() {
        if (layer.empty())
            return;
        route_layer(layer);
        for (int gi : layer) {
            const ir::Gate &g = clean.gate(gi);
            ir::Gate copy = g;
            copy.setQubits({l2p[static_cast<size_t>(g.qubit(0))],
                            l2p[static_cast<size_t>(g.qubit(1))]});
            phys.add(std::move(copy));
        }
        layer.clear();
        std::fill(layer_qubits.begin(), layer_qubits.end(), 0);
    };

    for (int i = 0; i < clean.size(); ++i) {
        const ir::Gate &g = clean.gate(i);
        if (g.numQubits() == 1) {
            // A 1-qubit gate on a qubit used by the current layer
            // must wait for the layer; flush to preserve order.
            if (layer_qubits[static_cast<size_t>(g.qubit(0))])
                flush_layer();
            ir::Gate copy = g;
            copy.setQubits({l2p[static_cast<size_t>(g.qubit(0))]});
            phys.add(std::move(copy));
            continue;
        }
        if (layer_qubits[static_cast<size_t>(g.qubit(0))] ||
            layer_qubits[static_cast<size_t>(g.qubit(1))]) {
            flush_layer();
        }
        layer.push_back(i);
        layer_qubits[static_cast<size_t>(g.qubit(0))] = 1;
        layer_qubits[static_cast<size_t>(g.qubit(1))] = 1;
    }
    flush_layer();

    result.success = true;
    result.status = search::statusFor(guard.stop());
    result.stats.seconds = stopwatch.seconds();
    if (probe.active()) {
        probe.finishRun(result.stats.expanded, result.stats.generated,
                        result.stats.filtered,
                        result.stats.maxQueueSize, 0,
                        result.stats.seconds);
    }
    const auto final_layout = ir::propagateLayout(phys, initial);
    result.mapped =
        ir::MappedCircuit(std::move(phys), initial, final_layout);
    return result;
}

} // namespace toqm::baselines
