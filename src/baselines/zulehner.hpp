/**
 * @file
 * Zulehner-style baseline (Zulehner, Paler, Wille — "An Efficient
 * Methodology for Mapping Quantum Circuits to the IBM QX
 * Architectures", DATE 2018): the second mapper the paper compares
 * against in Table 3.
 *
 * The circuit is partitioned into layers of two-qubit gates acting on
 * disjoint qubits; for each layer an A* search over qubit
 * permutations finds a minimal sequence of swaps making every gate of
 * the layer coupling-compliant.  The A* heuristic is
 * sum(max(d_i - 1, 0)) / 2, admissible because one swap moves two
 * qubits and can reduce the total excess distance by at most 2.
 * A node budget guards pathological layers; beyond it the layer is
 * routed greedily along shortest paths (rare, deterministic).
 */

#ifndef TOQM_BASELINES_ZULEHNER_HPP
#define TOQM_BASELINES_ZULEHNER_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"
#include "search/resource_guard.hpp"
#include "search/search_stats.hpp"

namespace toqm::baselines {

/** Tunables of the layered A* mapper. */
struct ZulehnerConfig
{
    /** Node budget per layer before the greedy fallback. */
    std::uint64_t perLayerNodeBudget = 200'000;
    /** Seed for the random initial layout (when none is given). */
    std::uint64_t seed = 11;
    /**
     * Resource limits; all-defaults = disarmed.  On a guard stop the
     * current and all remaining layers degrade to greedy
     * shortest-path routing (the anytime incumbent of this layered
     * scheme: always complete, just with more swaps), so a deadline
     * run still yields a valid mapping.
     */
    search::GuardConfig guard;
};

/** Result of a Zulehner-style run. */
struct ZulehnerResult
{
    bool success = false;
    /** Solved, or the guard stop reason when layers were degraded to
     *  greedy routing mid-run (the mapping is still complete). */
    search::SearchStatus status = search::SearchStatus::Solved;
    ir::MappedCircuit mapped;
    int swapCount = 0;
    /** Layers that fell back to greedy routing. */
    int greedyFallbacks = 0;
    /** Unified run report (expanded = per-layer A* pops, generated =
     *  pushes, summed over all layers). */
    search::SearchStats stats;
};

/** The layer-by-layer swap-minimizing mapper. */
class ZulehnerMapper
{
  public:
    ZulehnerMapper(const arch::CouplingGraph &graph,
                   ZulehnerConfig config = {});

    ZulehnerResult map(const ir::Circuit &logical,
                       std::optional<std::vector<int>> initial_layout =
                           std::nullopt) const;

  private:
    arch::CouplingGraph _graph;
    ZulehnerConfig _config;
};

} // namespace toqm::baselines

#endif // TOQM_BASELINES_ZULEHNER_HPP
