/**
 * @file
 * SABRE baseline (Li, Ding, Xie — "Tackling the Qubit Mapping Problem
 * for NISQ-Era Quantum Devices", ASPLOS 2019): the state-of-the-art
 * swap-count-oriented mapper the paper compares against in Table 3.
 *
 * Faithful reimplementation of the published algorithm:
 *  - front layer F of dependence-ready two-qubit gates;
 *  - executable gates retire immediately;
 *  - otherwise score every swap touching a qubit of F with
 *    H = (1/|F|) * sum_F d(g) + W * (1/|E|) * sum_E d(g), where E is
 *    the extended (lookahead) set, scaled by a decay factor on
 *    recently swapped qubits to spread swaps across qubits;
 *  - bidirectional initial-mapping passes: forward + backward
 *    traversals refine a random initial layout.
 *
 * SABRE optimizes swap count, not circuit time: cycles for Table 3
 * come from scheduling its output with the shared latency model.
 */

#ifndef TOQM_BASELINES_SABRE_HPP
#define TOQM_BASELINES_SABRE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"

namespace toqm::baselines {

/** SABRE tunables (defaults follow the paper). */
struct SabreConfig
{
    /** Extended-set size (lookahead gates). */
    int extendedSetSize = 20;
    /** Extended-set weight W. */
    double extendedSetWeight = 0.5;
    /** Decay added to a qubit's factor per swap it participates in. */
    double decayDelta = 0.001;
    /** Decay factors reset after this many swaps. */
    int decayResetInterval = 5;
    /** Forward/backward refinement round trips for initial mapping. */
    int mappingPasses = 1;
    /** Seed for the random starting layout. */
    std::uint64_t seed = 7;
};

/** Result of a SABRE run. */
struct SabreResult
{
    bool success = false;
    ir::MappedCircuit mapped;
    int swapCount = 0;
};

/** The SABRE mapper. */
class SabreMapper
{
  public:
    SabreMapper(const arch::CouplingGraph &graph, SabreConfig config = {});

    /**
     * Map @p logical onto the device.  If @p initial_layout is absent
     * the bidirectional refinement chooses one.
     */
    SabreResult map(const ir::Circuit &logical,
                    std::optional<std::vector<int>> initial_layout =
                        std::nullopt) const;

  private:
    arch::CouplingGraph _graph;
    SabreConfig _config;
};

} // namespace toqm::baselines

#endif // TOQM_BASELINES_SABRE_HPP
