#include "verifier.hpp"

#include <utility>
#include <vector>

#include "obs/observer.hpp"

namespace toqm::sim {

namespace {

VerifyResult
failure(std::string message)
{
    VerifyResult r;
    r.ok = false;
    r.message = std::move(message);
    return r;
}

} // namespace

VerifyResult
verifyMapping(const ir::Circuit &logical, const ir::MappedCircuit &mapped,
              const arch::CouplingGraph &graph)
{
    const obs::PhaseScope obs_phase("verify");
    const int nl = logical.numQubits();
    const int np = graph.numQubits();

    if (mapped.physical.numQubits() != np) {
        return failure("physical circuit has " +
                       std::to_string(mapped.physical.numQubits()) +
                       " qubits but device has " + std::to_string(np));
    }
    if (static_cast<int>(mapped.initialLayout.size()) != nl)
        return failure("initial layout size mismatch");
    if (!ir::isInjectiveLayout(mapped.initialLayout, np))
        return failure("initial layout is not injective");

    // Per-logical-qubit queues of pending original gate indices.
    // Barriers are scheduling directives, not executable operations:
    // mappers legitimately drop them, so they do not enter the
    // queues.
    std::vector<std::vector<int>> queue(static_cast<size_t>(nl));
    for (int i = 0; i < logical.size(); ++i) {
        if (logical.gate(i).isBarrier())
            continue;
        for (int q : logical.gate(i).qubits())
            queue[static_cast<size_t>(q)].push_back(i);
    }
    std::vector<size_t> head(static_cast<size_t>(nl), 0);

    std::vector<int> phys2log =
        ir::invertLayout(mapped.initialLayout, np);

    for (int i = 0; i < mapped.physical.size(); ++i) {
        const ir::Gate &g = mapped.physical.gate(i);

        // Coupling compliance for every real two-qubit operation.
        if (g.numQubits() == 2 && !g.isBarrier() &&
            !graph.adjacent(g.qubit(0), g.qubit(1))) {
            return failure("gate " + std::to_string(i) + " (" + g.str() +
                           ") acts on uncoupled physical qubits");
        }

        if (g.isBarrier())
            continue;
        if (g.isSwap()) {
            std::swap(phys2log[static_cast<size_t>(g.qubit(0))],
                      phys2log[static_cast<size_t>(g.qubit(1))]);
            continue;
        }

        // Translate to logical operands.
        std::vector<int> logical_qubits;
        logical_qubits.reserve(g.qubits().size());
        for (int p : g.qubits()) {
            const int l = phys2log[static_cast<size_t>(p)];
            if (l < 0) {
                return failure("gate " + std::to_string(i) + " (" +
                               g.str() +
                               ") touches an unoccupied physical qubit");
            }
            logical_qubits.push_back(l);
        }

        // The gate must be at the head of every operand's queue.
        int expect = -1;
        for (int l : logical_qubits) {
            auto &q = queue[static_cast<size_t>(l)];
            auto &h = head[static_cast<size_t>(l)];
            if (h >= q.size()) {
                return failure("extra gate " + g.str() +
                               " beyond logical program on q" +
                               std::to_string(l));
            }
            if (expect == -1) {
                expect = q[h];
            } else if (q[h] != expect) {
                return failure(
                    "gate " + g.str() +
                    " violates dependency order (operand queues point "
                    "at different originals)");
            }
        }
        const ir::Gate &orig = logical.gate(expect);

        // Kind/name/parameters must match; operand order must match
        // up to the gate's own symmetry (CX is directional: control
        // and target may not be flipped silently).
        if (orig.kind() != g.kind() || orig.name() != g.name() ||
            orig.params() != g.params()) {
            return failure("gate " + g.str() +
                           " does not match original " + orig.str());
        }
        for (size_t k = 0; k < logical_qubits.size(); ++k) {
            if (orig.qubits()[k] != logical_qubits[k]) {
                return failure("gate " + g.str() +
                               " has permuted operands vs original " +
                               orig.str());
            }
        }
        for (int l : logical_qubits)
            ++head[static_cast<size_t>(l)];
    }

    for (int l = 0; l < nl; ++l) {
        if (head[static_cast<size_t>(l)] !=
            queue[static_cast<size_t>(l)].size()) {
            return failure("logical qubit q" + std::to_string(l) +
                           " has unexecuted gates remaining");
        }
    }

    // Final layout cross-check.
    const auto propagated =
        ir::propagateLayout(mapped.physical, mapped.initialLayout);
    if (static_cast<int>(mapped.finalLayout.size()) != nl)
        return failure("final layout size mismatch");
    for (int l = 0; l < nl; ++l) {
        if (propagated[static_cast<size_t>(l)] !=
            mapped.finalLayout[static_cast<size_t>(l)]) {
            return failure("declared final layout disagrees with swap "
                           "propagation at q" + std::to_string(l));
        }
    }

    VerifyResult ok;
    ok.ok = true;
    ok.message = "ok";
    return ok;
}

} // namespace toqm::sim
