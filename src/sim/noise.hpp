/**
 * @file
 * Reliability model: the paper's Section 1 argument made
 * quantitative.  "A qubit decoheres over time... A time-optimal
 * solution minimizes the impact of decoherence for the qubits in the
 * circuit, and results in higher fidelity of the circuit as a whole."
 *
 * The model composes two independent factors:
 *  - depolarizing gate errors: prod (1 - e_g) over executed gates,
 *    with separate rates for 1-qubit, 2-qubit and SWAP operations
 *    (a SWAP is three CXs on IBM hardware);
 *  - decoherence: exp(-makespan / T2) per PAYLOAD qubit — a qubit
 *    carrying algorithm state holds it from initialization to
 *    readout, so the whole circuit time is its exposure window.
 *    Spare device qubits that swaps merely route through carry no
 *    payload and do not decohere anything.
 *
 * Absolute numbers are a toy; the RANKING of transformed circuits is
 * the point: shorter circuits win even when they carry more swaps.
 */

#ifndef TOQM_SIM_NOISE_HPP
#define TOQM_SIM_NOISE_HPP

#include <functional>

#include "ir/circuit.hpp"
#include "ir/latency.hpp"

namespace toqm::sim {

/** Error-rate parameters. */
struct NoiseModel
{
    /** Depolarizing error per 1-qubit gate. */
    double oneQubitError = 1e-4;
    /** Depolarizing error per non-swap 2-qubit gate. */
    double twoQubitError = 1e-3;
    /** Error per SWAP (default: three 2-qubit gates' worth). */
    double swapError = 3e-3;
    /** Decoherence horizon, in cycles of the latency model. */
    double t2Cycles = 5000.0;

    /** Rough IBM-Q-era rates (the defaults). */
    static NoiseModel ibmEra() { return {}; }
};

/** Per-factor breakdown of a fidelity estimate. */
struct FidelityEstimate
{
    double gateFidelity = 1.0;
    double decoherenceFidelity = 1.0;

    double total() const { return gateFidelity * decoherenceFidelity; }
};

/**
 * Estimate the end-to-end fidelity of executing @p circuit under
 * @p latency and @p noise.  Barriers and measures are free.
 *
 * @param payload_qubits number of qubits carrying algorithm state
 *        (the LOGICAL width when scoring a mapped circuit); -1
 *        counts the qubits touched by any non-swap gate.
 */
FidelityEstimate estimateFidelity(const ir::Circuit &circuit,
                                  const ir::LatencyModel &latency,
                                  const NoiseModel &noise = {},
                                  int payload_qubits = -1);

/**
 * Per-gate error callback: the depolarizing error probability of
 * executing @p gate on its (physical) operands.  Called for every
 * non-barrier, non-measure gate of the circuit.
 */
using GateErrorFn = std::function<double(const ir::Gate &gate)>;

/**
 * Heterogeneous-device overload: gate errors come from @p gate_error
 * per gate instance (calibration-data rates keyed on the physical
 * operands) instead of three flat class rates; decoherence is the
 * same exp(-makespan * payload / t2Cycles) factor.  This is the
 * ground-truth evaluator behind the fidelity objective: the encoded
 * search cost approximates -ln of what this function reports.
 */
FidelityEstimate estimateFidelity(const ir::Circuit &circuit,
                                  const ir::LatencyModel &latency,
                                  const GateErrorFn &gate_error,
                                  double t2_cycles,
                                  int payload_qubits = -1);

} // namespace toqm::sim

#endif // TOQM_SIM_NOISE_HPP
