#include "noise.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "ir/schedule.hpp"

namespace toqm::sim {

FidelityEstimate
estimateFidelity(const ir::Circuit &circuit,
                 const ir::LatencyModel &latency,
                 const NoiseModel &noise, int payload_qubits)
{
    FidelityEstimate estimate;
    const ir::Schedule sched = ir::scheduleAsap(circuit, latency);

    std::vector<char> compute_qubit(
        static_cast<size_t>(circuit.numQubits()), 0);

    for (int i = 0; i < circuit.size(); ++i) {
        const ir::Gate &g = circuit.gate(i);
        if (g.isBarrier() || g.isMeasure())
            continue;

        if (g.isSwap())
            estimate.gateFidelity *= 1.0 - noise.swapError;
        else if (g.numQubits() == 2)
            estimate.gateFidelity *= 1.0 - noise.twoQubitError;
        else
            estimate.gateFidelity *= 1.0 - noise.oneQubitError;

        if (!g.isSwap()) {
            for (int q : g.qubits())
                compute_qubit[static_cast<size_t>(q)] = 1;
        }
    }

    // Payload qubits hold algorithm state from initialization to
    // readout, so each is exposed for the full makespan — circuit
    // TIME is the quantity decoherence punishes (paper Section 1).
    int payload = payload_qubits;
    if (payload < 0) {
        payload = 0;
        for (int q = 0; q < circuit.numQubits(); ++q)
            payload += compute_qubit[static_cast<size_t>(q)] ? 1 : 0;
    }
    estimate.decoherenceFidelity =
        std::exp(-static_cast<double>(sched.makespan) * payload /
                 noise.t2Cycles);
    return estimate;
}

FidelityEstimate
estimateFidelity(const ir::Circuit &circuit,
                 const ir::LatencyModel &latency,
                 const GateErrorFn &gate_error, double t2_cycles,
                 int payload_qubits)
{
    FidelityEstimate estimate;
    const ir::Schedule sched = ir::scheduleAsap(circuit, latency);

    std::vector<char> compute_qubit(
        static_cast<size_t>(circuit.numQubits()), 0);

    for (int i = 0; i < circuit.size(); ++i) {
        const ir::Gate &g = circuit.gate(i);
        if (g.isBarrier() || g.isMeasure())
            continue;

        estimate.gateFidelity *= 1.0 - gate_error(g);

        if (!g.isSwap()) {
            for (int q : g.qubits())
                compute_qubit[static_cast<size_t>(q)] = 1;
        }
    }

    int payload = payload_qubits;
    if (payload < 0) {
        payload = 0;
        for (int q = 0; q < circuit.numQubits(); ++q)
            payload += compute_qubit[static_cast<size_t>(q)] ? 1 : 0;
    }
    estimate.decoherenceFidelity =
        std::exp(-static_cast<double>(sched.makespan) * payload /
                 t2_cycles);
    return estimate;
}

} // namespace toqm::sim
