/**
 * @file
 * Stabilizer (Clifford) simulator in the Aaronson-Gottesman CHP
 * tableau formalism.
 *
 * The dense statevector oracle (statevector.hpp) verifies mapped
 * circuits semantically but caps out around 14 qubits.  Clifford
 * circuits — H, S, X, Y, Z, CX, CZ, SWAP — admit polynomial-time
 * simulation, so this tableau simulator extends semantic equivalence
 * checking to the full 20-qubit devices and thousands of gates of
 * the paper's Table 3 workloads.
 *
 * Phase conventions and update rules follow Aaronson & Gottesman,
 * "Improved simulation of stabilizer circuits" (2004): a 2n x 2n
 * binary tableau of destabilizer and stabilizer generators with a
 * sign bit per row, canonicalized by Gaussian elimination with the
 * CHP rowsum phase arithmetic.
 */

#ifndef TOQM_SIM_STABILIZER_HPP
#define TOQM_SIM_STABILIZER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"

namespace toqm::sim {

/** A stabilizer state over up to 64 qubits. */
class StabilizerState
{
  public:
    /** Initialize to |0...0> over @p num_qubits. */
    explicit StabilizerState(int num_qubits);

    int numQubits() const { return _n; }

    /** Clifford primitives. @{ */
    void applyH(int q);
    void applyS(int q);
    void applyCX(int control, int target);
    /** @} */

    /**
     * Apply any Clifford gate kind (H, S, Sdg, X, Y, Z, CX, CZ,
     * Swap; barriers are no-ops).
     * @throws std::invalid_argument for non-Clifford gates.
     */
    void apply(const ir::Gate &gate);

    /** Apply every gate of @p circuit. */
    void run(const ir::Circuit &circuit);

    /** @return true if @p gate can be applied. */
    static bool isClifford(const ir::Gate &gate);

    /**
     * Canonical generator strings of the STABILIZER group, one per
     * qubit, e.g. "+XZI": equal vectors <=> equal states.
     */
    std::vector<std::string> canonicalStabilizers() const;

    bool operator==(const StabilizerState &other) const;

  private:
    int _n;
    /** Row-major bit rows: [0, n) destabilizers, [n, 2n) stabilizers. */
    std::vector<std::uint64_t> _x;
    std::vector<std::uint64_t> _z;
    std::vector<std::uint8_t> _r; ///< sign bit per row

    void rowsum(int h, int i);
    StabilizerState canonicalized() const;
};

/**
 * Clifford-only random circuit (for large-scale semantic tests).
 */
ir::Circuit randomCliffordCircuit(int n, int num_gates,
                                  double two_qubit_fraction,
                                  std::uint64_t seed,
                                  double locality = 0.0);

/**
 * Semantic equivalence of a mapped Clifford circuit against its
 * logical original, at full device width: both sides run from
 * random product stabilizer inputs placed per the initial layout;
 * the mapped side is then un-permuted (final -> initial layout) and
 * the canonical tableaus compared.
 *
 * @return true if every trial matches.
 * @throws std::invalid_argument if a gate is not Clifford.
 */
bool cliffordEquivalent(const ir::Circuit &logical,
                        const ir::MappedCircuit &mapped,
                        int trials = 3, std::uint64_t seed = 99);

} // namespace toqm::sim

#endif // TOQM_SIM_STABILIZER_HPP
