#include "stabilizer.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace toqm::sim {

namespace {

class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : _state(seed) {}

    std::uint64_t
    next()
    {
        _state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = _state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    int
    below(int bound)
    {
        return static_cast<int>(next() % static_cast<std::uint64_t>(bound));
    }

    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _state;
};

/**
 * The CHP g-function: the exponent (mod 4) that multiplying the
 * single-qubit Paulis (x1, z1) * (x2, z2) contributes.
 */
int
g(int x1, int z1, int x2, int z2)
{
    if (!x1 && !z1)
        return 0;
    if (x1 && z1) // Y
        return z2 - x2;
    if (x1 && !z1) // X
        return z2 * (2 * x2 - 1);
    return x2 * (1 - 2 * z2); // Z
}

} // namespace

StabilizerState::StabilizerState(int num_qubits) : _n(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 64)
        throw std::invalid_argument(
            "stabilizer state supports 1..64 qubits");
    _x.assign(static_cast<size_t>(2 * _n), 0);
    _z.assign(static_cast<size_t>(2 * _n), 0);
    _r.assign(static_cast<size_t>(2 * _n), 0);
    for (int i = 0; i < _n; ++i) {
        _x[static_cast<size_t>(i)] = 1ull << i;          // destab X_i
        _z[static_cast<size_t>(_n + i)] = 1ull << i;     // stab   Z_i
    }
}

void
StabilizerState::applyH(int q)
{
    const std::uint64_t bit = 1ull << q;
    for (int i = 0; i < 2 * _n; ++i) {
        const bool xb = _x[static_cast<size_t>(i)] & bit;
        const bool zb = _z[static_cast<size_t>(i)] & bit;
        _r[static_cast<size_t>(i)] ^=
            static_cast<std::uint8_t>(xb && zb);
        if (xb != zb) {
            _x[static_cast<size_t>(i)] ^= bit;
            _z[static_cast<size_t>(i)] ^= bit;
        }
    }
}

void
StabilizerState::applyS(int q)
{
    const std::uint64_t bit = 1ull << q;
    for (int i = 0; i < 2 * _n; ++i) {
        const bool xb = _x[static_cast<size_t>(i)] & bit;
        const bool zb = _z[static_cast<size_t>(i)] & bit;
        _r[static_cast<size_t>(i)] ^=
            static_cast<std::uint8_t>(xb && zb);
        if (xb)
            _z[static_cast<size_t>(i)] ^= bit;
    }
}

void
StabilizerState::applyCX(int control, int target)
{
    const std::uint64_t cbit = 1ull << control;
    const std::uint64_t tbit = 1ull << target;
    for (int i = 0; i < 2 * _n; ++i) {
        const bool xc = _x[static_cast<size_t>(i)] & cbit;
        const bool xt = _x[static_cast<size_t>(i)] & tbit;
        const bool zc = _z[static_cast<size_t>(i)] & cbit;
        const bool zt = _z[static_cast<size_t>(i)] & tbit;
        _r[static_cast<size_t>(i)] ^=
            static_cast<std::uint8_t>(xc && zt && (xt == zc));
        if (xc)
            _x[static_cast<size_t>(i)] ^= tbit;
        if (zt)
            _z[static_cast<size_t>(i)] ^= cbit;
    }
}

bool
StabilizerState::isClifford(const ir::Gate &gate)
{
    switch (gate.kind()) {
      case ir::GateKind::H:
      case ir::GateKind::S:
      case ir::GateKind::Sdg:
      case ir::GateKind::X:
      case ir::GateKind::Y:
      case ir::GateKind::Z:
      case ir::GateKind::CX:
      case ir::GateKind::CZ:
      case ir::GateKind::Swap:
      case ir::GateKind::Barrier:
        return true;
      default:
        return false;
    }
}

void
StabilizerState::apply(const ir::Gate &gate)
{
    switch (gate.kind()) {
      case ir::GateKind::H:
        applyH(gate.qubit(0));
        return;
      case ir::GateKind::S:
        applyS(gate.qubit(0));
        return;
      case ir::GateKind::Sdg:
        applyS(gate.qubit(0));
        applyS(gate.qubit(0));
        applyS(gate.qubit(0));
        return;
      case ir::GateKind::Z:
        applyS(gate.qubit(0));
        applyS(gate.qubit(0));
        return;
      case ir::GateKind::X:
        applyH(gate.qubit(0));
        applyS(gate.qubit(0));
        applyS(gate.qubit(0));
        applyH(gate.qubit(0));
        return;
      case ir::GateKind::Y: // X then Z, up to global phase
        applyH(gate.qubit(0));
        applyS(gate.qubit(0));
        applyS(gate.qubit(0));
        applyH(gate.qubit(0));
        applyS(gate.qubit(0));
        applyS(gate.qubit(0));
        return;
      case ir::GateKind::CX:
        applyCX(gate.qubit(0), gate.qubit(1));
        return;
      case ir::GateKind::CZ:
        applyH(gate.qubit(1));
        applyCX(gate.qubit(0), gate.qubit(1));
        applyH(gate.qubit(1));
        return;
      case ir::GateKind::Swap:
        applyCX(gate.qubit(0), gate.qubit(1));
        applyCX(gate.qubit(1), gate.qubit(0));
        applyCX(gate.qubit(0), gate.qubit(1));
        return;
      case ir::GateKind::Barrier:
        return;
      default:
        throw std::invalid_argument("non-Clifford gate: " +
                                    gate.name());
    }
}

void
StabilizerState::run(const ir::Circuit &circuit)
{
    if (circuit.numQubits() > _n)
        throw std::invalid_argument("circuit wider than state");
    for (const ir::Gate &g : circuit.gates())
        apply(g);
}

void
StabilizerState::rowsum(int h, int i)
{
    // Multiply row h by row i, with CHP phase arithmetic.
    int phase = 2 * _r[static_cast<size_t>(h)] +
                2 * _r[static_cast<size_t>(i)];
    for (int j = 0; j < _n; ++j) {
        const std::uint64_t bit = 1ull << j;
        phase += g((_x[static_cast<size_t>(i)] & bit) ? 1 : 0,
                   (_z[static_cast<size_t>(i)] & bit) ? 1 : 0,
                   (_x[static_cast<size_t>(h)] & bit) ? 1 : 0,
                   (_z[static_cast<size_t>(h)] & bit) ? 1 : 0);
    }
    phase %= 4;
    if (phase < 0)
        phase += 4;
    _r[static_cast<size_t>(h)] = static_cast<std::uint8_t>(phase / 2);
    _x[static_cast<size_t>(h)] ^= _x[static_cast<size_t>(i)];
    _z[static_cast<size_t>(h)] ^= _z[static_cast<size_t>(i)];
}

StabilizerState
StabilizerState::canonicalized() const
{
    StabilizerState s = *this;
    // Gaussian elimination over the stabilizer rows [n, 2n).
    int row = s._n;
    const auto pivot_and_clear = [&s, &row](std::uint64_t bit,
                                            bool use_x) {
        auto &major = use_x ? s._x : s._z;
        int pivot = -1;
        for (int i = row; i < 2 * s._n; ++i) {
            if (major[static_cast<size_t>(i)] & bit) {
                pivot = i;
                break;
            }
        }
        if (pivot < 0)
            return;
        std::swap(s._x[static_cast<size_t>(pivot)],
                  s._x[static_cast<size_t>(row)]);
        std::swap(s._z[static_cast<size_t>(pivot)],
                  s._z[static_cast<size_t>(row)]);
        std::swap(s._r[static_cast<size_t>(pivot)],
                  s._r[static_cast<size_t>(row)]);
        for (int i = s._n; i < 2 * s._n; ++i) {
            if (i != row && (major[static_cast<size_t>(i)] & bit))
                s.rowsum(i, row);
        }
        ++row;
    };
    for (int j = 0; j < s._n; ++j)
        pivot_and_clear(1ull << j, /*use_x=*/true);
    for (int j = 0; j < s._n; ++j)
        pivot_and_clear(1ull << j, /*use_x=*/false);
    return s;
}

std::vector<std::string>
StabilizerState::canonicalStabilizers() const
{
    const StabilizerState s = canonicalized();
    std::vector<std::string> out;
    out.reserve(static_cast<size_t>(_n));
    for (int i = _n; i < 2 * _n; ++i) {
        std::string row = s._r[static_cast<size_t>(i)] ? "-" : "+";
        for (int j = 0; j < _n; ++j) {
            const bool xb = s._x[static_cast<size_t>(i)] & (1ull << j);
            const bool zb = s._z[static_cast<size_t>(i)] & (1ull << j);
            row += xb ? (zb ? 'Y' : 'X') : (zb ? 'Z' : 'I');
        }
        out.push_back(std::move(row));
    }
    return out;
}

bool
StabilizerState::operator==(const StabilizerState &other) const
{
    if (_n != other._n)
        return false;
    return canonicalStabilizers() == other.canonicalStabilizers();
}

ir::Circuit
randomCliffordCircuit(int n, int num_gates, double two_qubit_fraction,
                      std::uint64_t seed, double locality)
{
    if (n < 2)
        throw std::invalid_argument("need at least 2 qubits");
    SplitMix64 rng(seed);
    ir::Circuit c(n, "clifford_" + std::to_string(n) + "q");
    constexpr ir::GateKind one_q[] = {
        ir::GateKind::H, ir::GateKind::S, ir::GateKind::X,
        ir::GateKind::Z, ir::GateKind::Sdg, ir::GateKind::Y,
    };
    constexpr ir::GateKind two_q[] = {
        ir::GateKind::CX, ir::GateKind::CX, ir::GateKind::CZ,
    };
    for (int i = 0; i < num_gates; ++i) {
        if (rng.unit() < two_qubit_fraction) {
            const int a = rng.below(n);
            int b;
            if (rng.unit() < locality) {
                b = (a == 0) ? 1
                    : (a == n - 1) ? n - 2
                    : (rng.below(2) == 0 ? a - 1 : a + 1);
            } else {
                b = rng.below(n - 1);
                if (b >= a)
                    ++b;
            }
            c.add(ir::Gate(two_q[rng.below(3)], a, b));
        } else {
            c.add(ir::Gate(one_q[rng.below(6)], rng.below(n)));
        }
    }
    return c;
}

bool
cliffordEquivalent(const ir::Circuit &logical,
                   const ir::MappedCircuit &mapped, int trials,
                   std::uint64_t seed)
{
    const int nl = logical.numQubits();
    const int np = mapped.physical.numQubits();
    if (static_cast<int>(mapped.initialLayout.size()) != nl ||
        static_cast<int>(mapped.finalLayout.size()) != nl) {
        return false;
    }

    // The logical circuit executed at its initial physical homes.
    std::vector<int> pad_map = mapped.initialLayout;
    const ir::Circuit logical_padded =
        [&]() {
            ir::Circuit out(np, logical.name());
            for (const ir::Gate &g : logical.gates()) {
                if (g.isBarrier())
                    continue;
                ir::Gate copy = g;
                std::vector<int> qs;
                qs.reserve(g.qubits().size());
                for (int q : g.qubits())
                    qs.push_back(pad_map[static_cast<size_t>(q)]);
                copy.setQubits(std::move(qs));
                out.add(std::move(copy));
            }
            return out;
        }();

    SplitMix64 rng(seed);
    for (int trial = 0; trial <= trials; ++trial) {
        StabilizerState lhs(np);
        StabilizerState rhs(np);

        if (trial > 0) {
            // Random product stabilizer input on the payload qubits.
            for (int l = 0; l < nl; ++l) {
                const int p = mapped.initialLayout[
                    static_cast<size_t>(l)];
                const int which = rng.below(6);
                const auto prep = [&](StabilizerState &s) {
                    switch (which) {
                      case 0: break;                       // |0>
                      case 1: s.applyH(p); s.applyS(p);
                              s.applyS(p); s.applyH(p); break; // |1>
                      case 2: s.applyH(p); break;          // |+>
                      case 3: s.applyH(p); s.applyS(p);
                              s.applyS(p); break;          // |->
                      case 4: s.applyH(p); s.applyS(p); break; // |i>
                      default: s.applyH(p); s.applyS(p);
                               s.applyS(p); s.applyS(p); break;
                    }
                };
                prep(lhs);
                prep(rhs);
            }
        }

        lhs.run(logical_padded);
        rhs.run(mapped.physical);

        // Un-permute the mapped result with explicit transpositions:
        // the content that ended at finalLayout[l] must return to
        // initialLayout[l].  content[p] labels the position whose
        // end-of-circuit content currently sits at p.  Placing into
        // distinct targets one by one never displaces an
        // already-placed payload (targets are injective), and the
        // leftover spares all hold |0>, where permutation is
        // irrelevant.
        std::vector<int> content(static_cast<size_t>(np));
        for (int p = 0; p < np; ++p)
            content[static_cast<size_t>(p)] = p;
        for (int l = 0; l < nl; ++l) {
            const int want =
                mapped.initialLayout[static_cast<size_t>(l)];
            const int have =
                mapped.finalLayout[static_cast<size_t>(l)];
            int cur = -1;
            for (int p = 0; p < np; ++p) {
                if (content[static_cast<size_t>(p)] == have) {
                    cur = p;
                    break;
                }
            }
            if (cur != want) {
                rhs.apply(ir::Gate(ir::GateKind::Swap, cur, want));
                std::swap(content[static_cast<size_t>(cur)],
                          content[static_cast<size_t>(want)]);
            }
        }

        if (!(lhs == rhs))
            return false;
    }
    return true;
}

} // namespace toqm::sim
