/**
 * @file
 * Dense statevector simulator.
 *
 * This is the semantic-equivalence oracle of the repository: tests use
 * it to prove that a mapped circuit (swaps inserted, qubits permuted)
 * implements exactly the same unitary as the original logical circuit,
 * up to the tracked output permutation and a global phase.
 *
 * Supports every concrete gate kind in ir::GateKind (GT skeleton
 * gates have no fixed unitary and are rejected).  Practical up to
 * ~14 qubits, which covers every optimality experiment in the paper.
 */

#ifndef TOQM_SIM_STATEVECTOR_HPP
#define TOQM_SIM_STATEVECTOR_HPP

#include <complex>
#include <cstdint>
#include <vector>

#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"

namespace toqm::sim {

using Amplitude = std::complex<double>;

/** A dense quantum state over n qubits (qubit 0 = least significant). */
class StateVector
{
  public:
    /** Initialize to the basis state |basis> over @p num_qubits. */
    explicit StateVector(int num_qubits, std::uint64_t basis = 0);

    int numQubits() const { return _numQubits; }

    const std::vector<Amplitude> &amplitudes() const { return _amps; }

    Amplitude amplitude(std::uint64_t basis) const
    {
        return _amps[static_cast<size_t>(basis)];
    }

    /** Apply a single gate. @throws for non-unitary/GT/opaque kinds. */
    void apply(const ir::Gate &gate);

    /** Apply every gate of @p circuit in order. */
    void run(const ir::Circuit &circuit);

    /** Apply an arbitrary 2x2 unitary to qubit @p q. */
    void apply1Q(const Amplitude (&u)[2][2], int q);

    /** Apply an arbitrary 4x4 unitary to (q0=low bit, q1=high bit). */
    void apply2Q(const Amplitude (&u)[4][4], int q0, int q1);

    /** Sum of |amplitude|^2 (should stay 1 within rounding). */
    double norm() const;

    /**
     * Fidelity |<this|other>|: 1 means equal up to global phase.
     */
    double overlap(const StateVector &other) const;

  private:
    int _numQubits;
    std::vector<Amplitude> _amps;
};

/**
 * Compare a mapped circuit against its logical original.
 *
 * Simulates both on @p trials random product input states (plus the
 * all-zeros state), placing logical inputs on physical qubits per the
 * initial layout and reading results back per the final layout.
 *
 * @return true if every trial matches up to global phase (within
 *         1e-7 infidelity).
 */
bool semanticallyEquivalent(const ir::Circuit &logical,
                            const ir::MappedCircuit &mapped,
                            int trials = 3, std::uint64_t seed = 12345);

} // namespace toqm::sim

#endif // TOQM_SIM_STATEVECTOR_HPP
