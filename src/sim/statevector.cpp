#include "statevector.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "obs/observer.hpp"

namespace toqm::sim {

namespace {

constexpr double pi = std::numbers::pi;

using U2 = Amplitude[2][2];

void
u3Matrix(double theta, double phi, double lambda, U2 &u)
{
    const double c = std::cos(theta / 2.0);
    const double s = std::sin(theta / 2.0);
    u[0][0] = c;
    u[0][1] = -std::polar(s, lambda);
    u[1][0] = std::polar(s, phi);
    u[1][1] = std::polar(c, phi + lambda);
}

class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : _state(seed) {}

    std::uint64_t
    next()
    {
        _state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = _state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    double
    unit()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t _state;
};

} // namespace

StateVector::StateVector(int num_qubits, std::uint64_t basis)
    : _numQubits(num_qubits)
{
    if (num_qubits < 1 || num_qubits > 26)
        throw std::invalid_argument("statevector supports 1..26 qubits");
    _amps.assign(size_t{1} << num_qubits, Amplitude{0.0, 0.0});
    if (basis >= _amps.size())
        throw std::out_of_range("basis state out of range");
    _amps[static_cast<size_t>(basis)] = 1.0;
}

void
StateVector::apply1Q(const Amplitude (&u)[2][2], int q)
{
    const std::uint64_t bit = 1ull << q;
    const size_t n = _amps.size();
    for (size_t i = 0; i < n; ++i) {
        if (i & bit)
            continue;
        const Amplitude a0 = _amps[i];
        const Amplitude a1 = _amps[i | bit];
        _amps[i] = u[0][0] * a0 + u[0][1] * a1;
        _amps[i | bit] = u[1][0] * a0 + u[1][1] * a1;
    }
}

void
StateVector::apply2Q(const Amplitude (&u)[4][4], int q0, int q1)
{
    const std::uint64_t b0 = 1ull << q0;
    const std::uint64_t b1 = 1ull << q1;
    const size_t n = _amps.size();
    for (size_t i = 0; i < n; ++i) {
        if (i & (b0 | b1))
            continue;
        // Sub-basis ordering: index bit0 = q0, bit1 = q1.
        const size_t idx[4] = {i, i | b0, i | b1, i | b0 | b1};
        Amplitude in[4];
        for (int k = 0; k < 4; ++k)
            in[k] = _amps[idx[k]];
        for (int r = 0; r < 4; ++r) {
            Amplitude acc{0.0, 0.0};
            for (int c = 0; c < 4; ++c)
                acc += u[r][c] * in[c];
            _amps[idx[r]] = acc;
        }
    }
}

void
StateVector::apply(const ir::Gate &gate)
{
    using ir::GateKind;
    const auto param = [&gate](size_t i) {
        if (i >= gate.params().size())
            throw std::invalid_argument("gate " + gate.name() +
                                        " missing parameter");
        return gate.params()[i];
    };

    U2 u;
    const Amplitude one{1.0, 0.0};
    const Amplitude zero{0.0, 0.0};
    const Amplitude im{0.0, 1.0};

    switch (gate.kind()) {
      case GateKind::H: {
        const double r = 1.0 / std::sqrt(2.0);
        u[0][0] = r; u[0][1] = r; u[1][0] = r; u[1][1] = -r;
        apply1Q(u, gate.qubit(0));
        return;
      }
      case GateKind::X:
        u[0][0] = zero; u[0][1] = one; u[1][0] = one; u[1][1] = zero;
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::Y:
        u[0][0] = zero; u[0][1] = -im; u[1][0] = im; u[1][1] = zero;
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::Z:
        u[0][0] = one; u[0][1] = zero; u[1][0] = zero; u[1][1] = -one;
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::S:
        u[0][0] = one; u[0][1] = zero; u[1][0] = zero; u[1][1] = im;
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::Sdg:
        u[0][0] = one; u[0][1] = zero; u[1][0] = zero; u[1][1] = -im;
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::T:
        u[0][0] = one; u[0][1] = zero; u[1][0] = zero;
        u[1][1] = std::polar(1.0, pi / 4.0);
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::Tdg:
        u[0][0] = one; u[0][1] = zero; u[1][0] = zero;
        u[1][1] = std::polar(1.0, -pi / 4.0);
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::SX: {
        const Amplitude p{0.5, 0.5}, m{0.5, -0.5};
        u[0][0] = p; u[0][1] = m; u[1][0] = m; u[1][1] = p;
        apply1Q(u, gate.qubit(0));
        return;
      }
      case GateKind::ID:
        return;
      case GateKind::RX:
        u3Matrix(param(0), -pi / 2.0, pi / 2.0, u);
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::RY:
        u3Matrix(param(0), 0.0, 0.0, u);
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::RZ: {
        // Up to global phase, rz(phi) == u1(phi).
        u[0][0] = one; u[0][1] = zero; u[1][0] = zero;
        u[1][1] = std::polar(1.0, param(0));
        apply1Q(u, gate.qubit(0));
        return;
      }
      case GateKind::U1:
        u[0][0] = one; u[0][1] = zero; u[1][0] = zero;
        u[1][1] = std::polar(1.0, param(0));
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::U2:
        u3Matrix(pi / 2.0, param(0), param(1), u);
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::U3:
        u3Matrix(param(0), param(1), param(2), u);
        apply1Q(u, gate.qubit(0));
        return;
      case GateKind::CX: {
        // q0 = control, q1 = target.
        const std::uint64_t ctrl = 1ull << gate.qubit(0);
        const std::uint64_t tgt = 1ull << gate.qubit(1);
        for (size_t i = 0; i < _amps.size(); ++i) {
            if ((i & ctrl) && !(i & tgt))
                std::swap(_amps[i], _amps[i | tgt]);
        }
        return;
      }
      case GateKind::CZ: {
        const std::uint64_t mask =
            (1ull << gate.qubit(0)) | (1ull << gate.qubit(1));
        for (size_t i = 0; i < _amps.size(); ++i) {
            if ((i & mask) == mask)
                _amps[i] = -_amps[i];
        }
        return;
      }
      case GateKind::CP: {
        const Amplitude phase = std::polar(1.0, param(0));
        const std::uint64_t mask =
            (1ull << gate.qubit(0)) | (1ull << gate.qubit(1));
        for (size_t i = 0; i < _amps.size(); ++i) {
            if ((i & mask) == mask)
                _amps[i] *= phase;
        }
        return;
      }
      case GateKind::RZZ: {
        const Amplitude even = std::polar(1.0, -param(0) / 2.0);
        const Amplitude odd = std::polar(1.0, param(0) / 2.0);
        const std::uint64_t b0 = 1ull << gate.qubit(0);
        const std::uint64_t b1 = 1ull << gate.qubit(1);
        for (size_t i = 0; i < _amps.size(); ++i) {
            const bool p0 = (i & b0) != 0;
            const bool p1 = (i & b1) != 0;
            _amps[i] *= (p0 == p1) ? even : odd;
        }
        return;
      }
      case GateKind::Swap: {
        const std::uint64_t b0 = 1ull << gate.qubit(0);
        const std::uint64_t b1 = 1ull << gate.qubit(1);
        for (size_t i = 0; i < _amps.size(); ++i) {
            if ((i & b0) && !(i & b1))
                std::swap(_amps[i], _amps[(i & ~b0) | b1]);
        }
        return;
      }
      case GateKind::Barrier:
        return;
      case GateKind::GT:
        throw std::invalid_argument(
            "GT skeleton gates have no concrete unitary; simulate the "
            "concrete QFT circuit instead");
      default:
        throw std::invalid_argument("cannot simulate gate: " +
                                    gate.name());
    }
}

void
StateVector::run(const ir::Circuit &circuit)
{
    if (circuit.numQubits() > _numQubits)
        throw std::invalid_argument("circuit wider than state");
    for (const ir::Gate &g : circuit.gates())
        apply(g);
}

double
StateVector::norm() const
{
    double total = 0.0;
    for (const Amplitude &a : _amps)
        total += std::norm(a);
    return total;
}

double
StateVector::overlap(const StateVector &other) const
{
    if (other._amps.size() != _amps.size())
        throw std::invalid_argument("overlap: size mismatch");
    Amplitude inner{0.0, 0.0};
    for (size_t i = 0; i < _amps.size(); ++i)
        inner += std::conj(_amps[i]) * other._amps[i];
    return std::abs(inner);
}

bool
semanticallyEquivalent(const ir::Circuit &logical,
                       const ir::MappedCircuit &mapped, int trials,
                       std::uint64_t seed)
{
    const obs::PhaseScope obs_phase("verify");
    const int nl = logical.numQubits();
    const int np = mapped.physical.numQubits();
    if (static_cast<int>(mapped.initialLayout.size()) != nl ||
        static_cast<int>(mapped.finalLayout.size()) != nl) {
        return false;
    }
    if (np > 22 || nl > 22)
        throw std::invalid_argument("semanticallyEquivalent: too wide");

    SplitMix64 rng(seed);
    for (int trial = 0; trial <= trials; ++trial) {
        // Random product input state: ry(a) u1(b) on each logical
        // qubit (trial 0 uses the all-zeros state).
        std::vector<std::pair<double, double>> prep(
            static_cast<size_t>(nl), {0.0, 0.0});
        if (trial > 0) {
            for (auto &p : prep)
                p = {rng.unit() * pi, rng.unit() * 2.0 * pi};
        }

        StateVector lhs(nl);
        for (int q = 0; q < nl; ++q) {
            lhs.apply(ir::Gate(
                ir::GateKind::RY, q,
                std::vector<double>{prep[static_cast<size_t>(q)].first}));
            lhs.apply(ir::Gate(
                ir::GateKind::U1, q,
                std::vector<double>{prep[static_cast<size_t>(q)].second}));
        }
        ir::Circuit logical_clean = logical.withoutSwapsAndBarriers();
        lhs.run(logical_clean);

        StateVector rhs_phys(np);
        for (int l = 0; l < nl; ++l) {
            const int p = mapped.initialLayout[static_cast<size_t>(l)];
            rhs_phys.apply(ir::Gate(
                ir::GateKind::RY, p,
                std::vector<double>{prep[static_cast<size_t>(l)].first}));
            rhs_phys.apply(ir::Gate(
                ir::GateKind::U1, p,
                std::vector<double>{prep[static_cast<size_t>(l)].second}));
        }
        for (const ir::Gate &g : mapped.physical.gates()) {
            if (!g.isBarrier() && !g.isMeasure())
                rhs_phys.apply(g);
        }

        // Project the physical state back to logical qubit order via
        // the final layout; unoccupied physical qubits must be |0>.
        std::vector<Amplitude> out(size_t{1} << nl, Amplitude{0.0, 0.0});
        const auto &phys_amps = rhs_phys.amplitudes();
        for (size_t idx = 0; idx < phys_amps.size(); ++idx) {
            if (phys_amps[idx] == Amplitude{0.0, 0.0})
                continue;
            std::uint64_t log_idx = 0;
            std::uint64_t covered = 0;
            for (int l = 0; l < nl; ++l) {
                const int p = mapped.finalLayout[static_cast<size_t>(l)];
                covered |= 1ull << p;
                if (idx & (1ull << p))
                    log_idx |= 1ull << l;
            }
            if ((idx & ~covered) != 0) {
                // Amplitude on an unoccupied physical qubit: the
                // mapped circuit leaked state; only tolerable if tiny.
                if (std::norm(phys_amps[idx]) > 1e-18)
                    return false;
                continue;
            }
            out[static_cast<size_t>(log_idx)] += phys_amps[idx];
        }
        // Fidelity against the logical result, up to global phase.
        Amplitude inner{0.0, 0.0};
        double n1 = 0.0, n2 = 0.0;
        const auto &lamps = lhs.amplitudes();
        for (size_t i = 0; i < out.size(); ++i) {
            inner += std::conj(lamps[i]) * out[i];
            n1 += std::norm(lamps[i]);
            n2 += std::norm(out[i]);
        }
        if (n2 < 1e-12)
            return false;
        if (std::abs(inner) / std::sqrt(n1 * n2) < 1.0 - 1e-7)
            return false;
    }
    return true;
}

} // namespace toqm::sim
