/**
 * @file
 * Structural verifier for mapped circuits.
 *
 * Independently re-checks everything a mapper promises:
 *  1. the initial layout is a valid injection into the device;
 *  2. every two-qubit gate (incl.\ inserted swaps) acts on physically
 *     coupled qubits;
 *  3. tracking the logical permutation through the swaps, the
 *     non-swap gates replay the original circuit exactly — same gate
 *     kinds, parameters and per-qubit order (i.e.\ the dependency DAG
 *     is respected);
 *  4. the declared final layout equals the propagated one.
 *
 * The verifier is deliberately implemented with none of the mapper's
 * data structures so that a bug in the mapper cannot hide itself.
 */

#ifndef TOQM_SIM_VERIFIER_HPP
#define TOQM_SIM_VERIFIER_HPP

#include <string>

#include "arch/coupling_graph.hpp"
#include "ir/circuit.hpp"
#include "ir/mapped_circuit.hpp"

namespace toqm::sim {

/** Outcome of a structural verification. */
struct VerifyResult
{
    bool ok = false;
    std::string message; ///< Human-readable failure reason if !ok.

    explicit operator bool() const { return ok; }
};

/**
 * Structurally verify @p mapped against @p logical on @p graph.
 */
VerifyResult verifyMapping(const ir::Circuit &logical,
                           const ir::MappedCircuit &mapped,
                           const arch::CouplingGraph &graph);

} // namespace toqm::sim

#endif // TOQM_SIM_VERIFIER_HPP
