// 2-bit ripple-carry adder skeleton (Cuccaro MAJ/UMA, expanded).
OPENQASM 2.0;
include "qelib1.inc";
qreg a[2];
qreg b[2];
qreg cin[1];
qreg cout[1];
// MAJ(cin, b0, a0)
cx a[0], b[0];
cx a[0], cin[0];
ccx cin[0], b[0], a[0];
// MAJ(a0, b1, a1)
cx a[1], b[1];
cx a[1], a[0];
ccx a[0], b[1], a[1];
cx a[1], cout[0];
// UMA(a0, b1, a1)
ccx a[0], b[1], a[1];
cx a[1], a[0];
cx a[0], b[1];
// UMA(cin, b0, a0)
ccx cin[0], b[0], a[0];
cx a[0], cin[0];
cx cin[0], b[0];
