// A chain of Toffoli gates (stresses ccx macro expansion).
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
h q[0];
h q[1];
ccx q[0], q[1], q[2];
ccx q[1], q[2], q[3];
ccx q[2], q[3], q[4];
cx q[4], q[0];
