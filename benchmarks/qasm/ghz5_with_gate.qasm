// GHZ-5 via a user-declared entangling macro with a parameter.
OPENQASM 2.0;
include "qelib1.inc";
gate entangle(theta) c, t {
  ry(theta / 2) t;
  cx c, t;
  ry(-theta / 2) t;
}
qreg q[5];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
entangle(pi / 3) q[0], q[4];
barrier q;
