#!/bin/bash
# Two-stage LTO+PGO build of the search core.
#
#   stage 1: configure with -fprofile-generate (preset pgo-generate),
#            build toqm_map, and train it on the QFT corpus — the
#            workloads the bench harness times, so the profile matches
#            what check_bench_regression.py measures.
#   stage 2: reconfigure THE SAME build directory with -fprofile-use
#            (preset pgo-use) and rebuild everything.
#
# The two stages share build-pgo/ on purpose: GCC keys each .gcda
# profile on the object file's absolute path, so compiling stage 2 in
# a different directory would silently find no profiles.  Reusing the
# directory forces every object to recompile at its recorded path.
#
# Usage: ci/build_pgo.sh [jobs]   (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS=${1:-$(nproc)}
PROFDIR=$PWD/build-pgo-profiles

rm -rf build-pgo "$PROFDIR"
mkdir -p "$PROFDIR"

echo "== stage 1: instrumented build =="
cmake --preset pgo-generate
cmake --build build-pgo -j"$JOBS" --target toqm_map

echo "== training on the QFT corpus =="
# Mirrors the deterministic-mapper rows of the bench corpus matrix:
# optimal A* on small instances, the budgeted tokyo search that
# dominates filter/estimator time, and the heuristic/zulehner passes.
# Exit codes are ignored — budget-exhausted runs (exit 3) still emit
# full profiles, and training must not fail the build.
train() { ./build-pgo/tools/toqm_map "$@" > /dev/null 2>&1 || true; }
train --arch ibmqx2 --mapper optimal benchmarks/qasm/qft4.qasm
train --arch ibmqx2 --mapper optimal --search-initial benchmarks/qasm/bell.qasm
train --arch lnn4 --mapper optimal --search-initial benchmarks/qasm/qft4.qasm
train --arch lnn3 --mapper optimal benchmarks/qasm/toffoli_chain.qasm
train --arch ibmqx2 --mapper optimal benchmarks/qasm/ghz5_with_gate.qasm
train --arch tokyo --mapper optimal --search-initial --max-nodes 2000 \
      benchmarks/qasm/qft8.qasm
train --arch tokyo --mapper heuristic benchmarks/qasm/qft8.qasm
train --arch tokyo --mapper zulehner benchmarks/qasm/qft8.qasm
train --arch tokyo --mapper heuristic benchmarks/qasm/adder2.qasm

if ! ls "$PROFDIR"/*.gcda > /dev/null 2>&1; then
    echo "error: training produced no .gcda profiles in $PROFDIR" >&2
    exit 1
fi
echo "profiles: $(ls "$PROFDIR"/*.gcda | wc -l) .gcda files"

echo "== stage 2: profile-optimized build =="
cmake --preset pgo-use
cmake --build build-pgo -j"$JOBS"

echo "PGO build ready in build-pgo/"
