#!/usr/bin/env python3
"""Fail CI when the bench harness regresses against BENCH_4.json.

Two kinds of evidence, two kinds of check:

* ``--current`` is the MetricsRegistry snapshot parallel_benchmarks
  writes via TOQM_BENCH_METRICS_JSON.  Its ``counters`` accumulate
  across benchmark iterations, and the iteration count itself
  (``<prefix>.runs``) is timing-dependent, so every counter is
  normalized to a PER-RUN value before comparison.  Per-run search
  work (nodes expanded/generated/filtered for the fixed QFT-6/LNN
  instance) is deterministic up to race-cancellation timing, which in
  practice stays within a few percent; the documented tolerance is
  +/-10 % (``--tolerance 0.10``).  Only growth beyond tolerance fails
  — doing strictly less work than the baseline is an improvement, not
  a regression.  ``gauges`` (seconds, peak bytes, queue depth) are
  host-dependent and reported for information only.

* ``--micro`` is google-benchmark ``--benchmark_format=json`` output
  from micro_benchmarks.  BM_NodeExpansion is pure timing with no
  deterministic counter to pin, so it only gets a GENEROUS absolute
  ceiling (default 60000 ns ~= 10x the bench container's ~6 us) that
  catches order-of-magnitude accidents, not percent-level noise.
  When BM_FaultPointDisarmed and BM_GuardPollBaseline are both in the
  snapshot, the disarmed fault hook is additionally gated RELATIVE to
  the hook-free baseline loop (default 10x, with a 5 ns absolute
  floor below which sub-ns timer noise is ignored): on a default
  build the hook compiles to nothing, so any measurable gap means the
  "disarmed hooks are free" contract broke.

* ``--serve`` is google-benchmark JSON from serve_benchmarks.  The
  three serve benches get generous absolute ceilings, and the cache
  tier is additionally gated RELATIVE to the cold path: the ISSUE-10
  acceptance bar is BM_ServeCacheHit at least 10x below
  BM_ServeColdSearch on qft8/Tokyo (measured ~35x in the bench
  container), so ``--serve-hit-ratio 0.1`` fails the build when a
  cache hit costs more than a tenth of a cold search.  Both benches
  must be present for the relative gate to run.

Exit status: 0 = within tolerance, 1 = regression, 2 = usage/IO.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def per_run_counters(snapshot, path):
    counters = snapshot.get("counters")
    if not isinstance(counters, dict) or not counters:
        print(f"error: {path} has no counters object", file=sys.stderr)
        sys.exit(2)
    # Group by benchmark prefix; normalize by that prefix's `runs`.
    out = {}
    for key, value in sorted(counters.items()):
        prefix, _, field = key.rpartition(".")
        if field == "runs":
            continue
        runs = counters.get(f"{prefix}.runs")
        if not runs:
            print(f"error: {path}: no runs counter for '{key}'",
                  file=sys.stderr)
            sys.exit(2)
        out[key] = float(value) / float(runs)
    return out


def check_counters(baseline_path, current_path, tolerance):
    base = per_run_counters(load(baseline_path), baseline_path)
    cur = per_run_counters(load(current_path), current_path)
    failures = 0
    for key, base_value in base.items():
        if key not in cur:
            print(f"FAIL {key}: missing from {current_path}")
            failures += 1
            continue
        cur_value = cur[key]
        ratio = cur_value / base_value if base_value else float("inf")
        verdict = "ok"
        if ratio > 1.0 + tolerance:
            verdict = "FAIL"
            failures += 1
        print(f"{verdict} {key}: {cur_value:.1f}/run vs baseline "
              f"{base_value:.1f}/run ({ratio:.1%} of baseline)")
    for key in sorted(set(cur) - set(base)):
        print(f"note {key}: not in baseline (new counter, ignored)")
    return failures


def micro_times_ns(doc, micro_path):
    times = {}
    for bench in doc.get("benchmarks", []):
        time_ns = float(bench["real_time"])
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            print(f"error: {micro_path}: unknown time unit '{unit}'",
                  file=sys.stderr)
            sys.exit(2)
        times[bench.get("name")] = time_ns * scale
    return times


# Pure-timing search-core benchmarks get the same treatment as
# BM_NodeExpansion: a GENEROUS absolute ceiling (~10x the bench
# container's typical time) that catches order-of-magnitude
# accidents — an accidentally quadratic probe chain, a lost
# incremental path — not percent-level noise.
EXTRA_MICRO_CEILINGS_NS = {
    "BM_FilterAdmit": 150_000.0,    # ~600 admits/iter, ~13 us typical
    "BM_FilterLookup": 250_000.0,   # ~600 probes/iter, ~20 us typical
    "BM_IncrementalH": 5_000.0,     # single estimate, ~0.3 us typical
}


def check_micro(micro_path, ceiling_ns, hook_ratio, hook_floor_ns):
    times = micro_times_ns(load(micro_path), micro_path)
    failures = 0
    gates = dict(EXTRA_MICRO_CEILINGS_NS)
    gates["BM_NodeExpansion"] = ceiling_ns
    for name in sorted(gates):
        limit = gates[name]
        if name not in times:
            print(f"FAIL: {name} missing from {micro_path}")
            failures += 1
            continue
        time_ns = times[name]
        if time_ns > limit:
            print(f"FAIL {name}: {time_ns:.0f} ns > "
                  f"ceiling {limit:.0f} ns")
            failures += 1
        else:
            print(f"ok {name}: {time_ns:.0f} ns "
                  f"(ceiling {limit:.0f} ns)")
    hook = times.get("BM_FaultPointDisarmed")
    base = times.get("BM_GuardPollBaseline")
    if hook is not None and base is not None:
        limit = max(hook_floor_ns, hook_ratio * base)
        if hook > limit:
            print(f"FAIL BM_FaultPointDisarmed: {hook:.2f} ns > "
                  f"{limit:.2f} ns (baseline loop {base:.2f} ns) — "
                  f"disarmed fault hooks are no longer free")
            failures += 1
        else:
            print(f"ok BM_FaultPointDisarmed: {hook:.2f} ns vs "
                  f"baseline {base:.2f} ns (limit {limit:.2f} ns)")
    elif hook is not None or base is not None:
        print("FAIL: need BOTH BM_FaultPointDisarmed and "
              f"BM_GuardPollBaseline in {micro_path} to gate the "
              "disarmed-hook overhead")
        failures += 1
    return failures


# Serve-layer benches: generous absolute ceilings (~10x the bench
# container's typical times: cold search ~1.5 ms, warm search ~1.5 ms,
# cache hit ~45 us) that catch order-of-magnitude accidents.
SERVE_CEILINGS_NS = {
    "BM_ServeColdSearch": 50_000_000.0,
    "BM_ServeWarmVsCold": 50_000_000.0,
    "BM_ServeCacheHit": 500_000.0,
}


def check_serve(serve_path, hit_ratio):
    times = micro_times_ns(load(serve_path), serve_path)
    failures = 0
    for name in sorted(SERVE_CEILINGS_NS):
        limit = SERVE_CEILINGS_NS[name]
        if name not in times:
            print(f"FAIL: {name} missing from {serve_path}")
            failures += 1
            continue
        time_ns = times[name]
        if time_ns > limit:
            print(f"FAIL {name}: {time_ns:.0f} ns > "
                  f"ceiling {limit:.0f} ns")
            failures += 1
        else:
            print(f"ok {name}: {time_ns:.0f} ns "
                  f"(ceiling {limit:.0f} ns)")
    hit = times.get("BM_ServeCacheHit")
    cold = times.get("BM_ServeColdSearch")
    if hit is not None and cold is not None:
        limit = hit_ratio * cold
        if hit > limit:
            print(f"FAIL BM_ServeCacheHit: {hit:.0f} ns > "
                  f"{limit:.0f} ns ({hit_ratio:.0%} of cold search "
                  f"{cold:.0f} ns) — the cache tier no longer meets "
                  f"the >=10x speedup acceptance bar")
            failures += 1
        else:
            print(f"ok BM_ServeCacheHit: {hit:.0f} ns vs cold "
                  f"{cold:.0f} ns ({hit / cold:.1%}, limit "
                  f"{hit_ratio:.0%})")
    elif hit is not None or cold is not None:
        print("FAIL: need BOTH BM_ServeCacheHit and "
              f"BM_ServeColdSearch in {serve_path} to gate the "
              "cache-hit speedup")
        failures += 1
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed MetricsRegistry baseline "
                             "(BENCH_4.json)")
    parser.add_argument("--current", required=True,
                        help="TOQM_BENCH_METRICS_JSON snapshot from "
                             "this run")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed per-run counter growth "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--micro",
                        help="micro_benchmarks --benchmark_format="
                             "json output (optional)")
    parser.add_argument("--node-expansion-ceiling-ns", type=float,
                        default=60000.0,
                        help="absolute BM_NodeExpansion ceiling "
                             "(default 60000 ns)")
    parser.add_argument("--fault-hook-ratio", type=float,
                        default=10.0,
                        help="allowed BM_FaultPointDisarmed time as a "
                             "multiple of BM_GuardPollBaseline "
                             "(default 10x)")
    parser.add_argument("--fault-hook-floor-ns", type=float,
                        default=5.0,
                        help="absolute floor below which the "
                             "disarmed-hook gate ignores timer noise "
                             "(default 5 ns)")
    parser.add_argument("--serve",
                        help="serve_benchmarks --benchmark_format="
                             "json output (optional)")
    parser.add_argument("--serve-hit-ratio", type=float, default=0.1,
                        help="allowed BM_ServeCacheHit time as a "
                             "fraction of BM_ServeColdSearch "
                             "(default 0.1 = the >=10x speedup bar)")
    args = parser.parse_args()

    failures = check_counters(args.baseline, args.current,
                              args.tolerance)
    if args.micro:
        failures += check_micro(args.micro,
                                args.node_expansion_ceiling_ns,
                                args.fault_hook_ratio,
                                args.fault_hook_floor_ns)
    if args.serve:
        failures += check_serve(args.serve, args.serve_hit_ratio)
    if failures:
        print(f"{failures} bench regression(s) beyond tolerance")
        return 1
    print("bench within tolerance of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
