#!/usr/bin/env bash
# Deterministic fault sweep: inject a fault at every registered site,
# one at a time, through the REAL toqm_map surface, and assert the
# documented exit code and containment behavior for each.  Run under
# ASan and TSan in CI (the fault-sweep job) so an injected unwind that
# leaks or races fails loudly.
#
# Usage: ci/fault_sweep.sh BUILD_DIR
#   BUILD_DIR must be configured with -DTOQM_ENABLE_FAULT_INJECTION=ON
#   and have the toqm_map target built.  Run from the repo root.
#
# The sweep also proves the crash-safe journal end to end: a batch is
# SIGKILLed mid-flight and re-run with the same --journal; the resumed
# outputs must be byte-identical to an uninterrupted run.
set -u

BUILD=${1:?usage: ci/fault_sweep.sh BUILD_DIR}
MAP=$BUILD/tools/toqm_map
B=benchmarks/qasm
WORK=$BUILD/fault-sweep
rm -rf "$WORK"
mkdir -p "$WORK"

fail=0
covered=""

# run_case NAME SITE WANT_EXIT CMD...
run_case() {
    local name=$1 site=$2 want=$3
    shift 3
    "$@" > "$WORK/$name.out" 2> "$WORK/$name.err"
    local got=$?
    covered="$covered $site"
    if [ "$got" -ne "$want" ]; then
        echo "FAIL $name: want exit $want, got $got"
        sed 's/^/    /' "$WORK/$name.err" | head -5
        fail=1
    else
        echo "ok   $name (exit $got)"
    fi
}

# ---- site-by-site exit-code contract ---------------------------------
# Single-run sites are contained at the job boundary: an injected
# transient/permanent fault is exit 1, an injected allocation failure
# is exit 7 (see the exit-code table in toqm_map --help).
run_case pool_alloc_bad_alloc pool_alloc 7 \
    "$MAP" --fault-plan pool_alloc@1:bad_alloc --arch tokyo \
    --mapper optimal --search-initial --max-nodes 50000 "$B/qft8.qasm"
run_case pool_alloc_io_error pool_alloc 1 \
    "$MAP" --fault-plan pool_alloc@1:io_error --arch tokyo \
    --mapper optimal --search-initial --max-nodes 50000 "$B/qft8.qasm"
run_case guard_poll_error guard_poll 1 \
    "$MAP" --fault-plan guard_poll@1:error --arch tokyo \
    --mapper optimal --search-initial --max-nodes 50000 "$B/qft8.qasm"
run_case guard_poll_bad_alloc guard_poll 7 \
    "$MAP" --fault-plan guard_poll@1:bad_alloc --arch tokyo \
    --mapper optimal --search-initial --max-nodes 50000 "$B/qft8.qasm"
run_case qasm_io_io_error qasm_io 1 \
    "$MAP" --fault-plan qasm_io@1:io_error --arch tokyo \
    --mapper heuristic "$B/qft8.qasm"
run_case qasm_io_bad_alloc qasm_io 7 \
    "$MAP" --fault-plan qasm_io@1:bad_alloc --arch tokyo \
    --mapper heuristic "$B/qft8.qasm"
run_case calibration_io_io_error calibration_io 1 \
    "$MAP" --fault-plan calibration_io@1:io_error --arch tokyo \
    --mapper heuristic --objective fidelity \
    --calibration examples/calibration/tokyo.json "$B/qft8.qasm"
run_case calibration_io_bad_alloc calibration_io 7 \
    "$MAP" --fault-plan calibration_io@1:bad_alloc --arch tokyo \
    --mapper heuristic --objective fidelity \
    --calibration examples/calibration/tokyo.json "$B/qft8.qasm"
printf '%s\n' "$B/qft8.qasm" > "$WORK/manifest.txt"
run_case manifest_io_io_error manifest_io 1 \
    "$MAP" --fault-plan manifest_io@1:io_error --arch tokyo \
    --mapper heuristic --jobs 2 --manifest "$WORK/manifest.txt"
run_case manifest_io_bad_alloc manifest_io 7 \
    "$MAP" --fault-plan manifest_io@1:bad_alloc --arch tokyo \
    --mapper heuristic --jobs 2 --manifest "$WORK/manifest.txt"

# Self-healing sites: the fault is contained BELOW the job boundary,
# so the run still succeeds.
#  - worker_start: the lost job is resubmitted (runBatch sentinel).
#  - incumbent_publish / portfolio_launch: the faulted entry loses
#    the race; surviving entries deliver.
run_case worker_start_error worker_start 0 \
    "$MAP" --fault-plan worker_start@1:error --arch tokyo \
    --mapper heuristic --jobs 2 "$B/bell.qasm" "$B/qft4.qasm"
if [ "$(grep -c '====' "$WORK/worker_start_error.out")" -ne 2 ]; then
    echo "FAIL worker_start_error: a batch output went missing"
    fail=1
fi
run_case incumbent_publish_error incumbent_publish 0 \
    "$MAP" --fault-plan incumbent_publish@1:error --arch ibmqx2 \
    --mapper portfolio --search-initial "$B/qft4.qasm"
run_case portfolio_launch_error portfolio_launch 0 \
    "$MAP" --fault-plan portfolio_launch@1:error --arch ibmqx2 \
    --mapper portfolio --search-initial "$B/qft4.qasm"

# Recovery: a transient fault plus --retries converges to success and
# records the attempt history on the stats line.
run_case retry_recovers qasm_io 0 \
    "$MAP" --fault-plan qasm_io@1:io_error --retries 1 --arch tokyo \
    --mapper heuristic --stats-json "$B/qft8.qasm"
if ! grep -q '"fault":{"attempts":2' "$WORK/retry_recovers.err"; then
    echo "FAIL retry_recovers: no attempt history on the stats line"
    fail=1
fi
# Seeded probabilistic mode is reproducible: same plan, same outcome.
run_case prob_seeded_a qasm_io 1 \
    "$MAP" --fault-plan qasm_io@p1.0/42:io_error --arch tokyo \
    --mapper heuristic "$B/qft8.qasm"
run_case prob_seeded_b qasm_io 1 \
    "$MAP" --fault-plan qasm_io@p1.0/42:io_error --arch tokyo \
    --mapper heuristic "$B/qft8.qasm"

# ---- every registered site was swept ---------------------------------
for site in $("$MAP" --list-fault-sites); do
    case " $covered " in
        *" $site "*) ;;
        *)
            echo "FAIL sweep: registered site '$site' was never injected"
            fail=1
            ;;
    esac
done

# ---- SIGKILL mid-batch + journal resume ------------------------------
# jobs=1 runs bell first (fast, journaled) then qft8 (slow); the kill
# lands while qft8 is in flight.  The resumed run must skip bell and
# redo qft8, converging to outputs byte-identical to an uninterrupted
# reference run.  (If the kill ever races past batch completion the
# resume skips both jobs — still byte-identical, still a pass.)
J=$WORK/journal
rm -rf "$J"
mkdir -p "$J"
"$MAP" --arch tokyo --mapper optimal --search-initial \
    --max-nodes 20000 --jobs 1 --out-dir "$J/ref" \
    "$B/bell.qasm" "$B/qft8.qasm" > /dev/null 2>&1
# (Subshell: keeps bash's asynchronous "Killed" job notice out of
# the sweep log.)
(
    "$MAP" --arch tokyo --mapper optimal --search-initial \
        --max-nodes 20000 --jobs 1 --out-dir "$J/out" \
        --journal "$J/j.jsonl" \
        "$B/bell.qasm" "$B/qft8.qasm" > /dev/null 2>&1 &
    pid=$!
    for _ in $(seq 1 600); do
        [ -s "$J/j.jsonl" ] && break
        kill -0 "$pid" 2> /dev/null || break
        sleep 0.05
    done
    kill -9 "$pid" 2> /dev/null
    wait "$pid"
) 2> /dev/null
"$MAP" --arch tokyo --mapper optimal --search-initial \
    --max-nodes 20000 --jobs 1 --out-dir "$J/out" \
    --journal "$J/j.jsonl" \
    "$B/bell.qasm" "$B/qft8.qasm" > /dev/null 2> "$J/resume.err"
for f in bell.qasm qft8.qasm; do
    if ! cmp -s "$J/out/$f" "$J/ref/$f"; then
        echo "FAIL journal resume: $f differs from the uninterrupted run"
        fail=1
    fi
done
if [ "$fail" -eq 0 ]; then
    echo "ok   journal_resume_after_sigkill (outputs byte-identical)"
fi

exit "$fail"
