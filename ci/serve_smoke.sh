#!/usr/bin/env bash
# Serve-layer smoke for CI: feed a mixed workload through the
# toqm_serve daemon TWICE in one process, then assert
#  - every first-pass request is answered by the search tier,
#  - every second-pass repeat is answered from the result cache,
#  - repeated answers are byte-identical to their first-pass mates,
#  - the cache answer for qft8/tokyo is byte-identical to a cold
#    toqm_map run of the same instance,
#  - the daemon's final stats account exactly for the traffic.
#
# Usage: ci/serve_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD=${1:-build}
SERVE=$BUILD/tools/toqm_serve
MAP=$BUILD/tools/toqm_map
B=benchmarks/qasm
OUT=$BUILD/serve-smoke
rm -rf "$OUT"
mkdir -p "$OUT"

req() {
    printf '{"id":"%s","file":"%s","arch":"%s","mapper":"heuristic"}\n' \
        "$1" "$2" "$3"
}

{
    for pass in 1 2; do
        req "p$pass-qft8" "$B/qft8.qasm" tokyo
        req "p$pass-bell" "$B/bell.qasm" ibmqx2
        req "p$pass-toffoli" "$B/toffoli_chain.qasm" tokyo
        req "p$pass-qft4" "$B/qft4.qasm" tokyo
    done
    printf '{"cmd":"stats"}\n'
} > "$OUT/requests.jsonl"

"$SERVE" < "$OUT/requests.jsonl" \
    > "$OUT/responses.jsonl" 2> "$OUT/daemon.err"
grep -q 'drained after 8 request(s)' "$OUT/daemon.err"

# Cold reference for one of the instances.
"$MAP" --arch tokyo --mapper heuristic "$B/qft8.qasm" \
    > "$OUT/cold_qft8.qasm"

python3 - "$OUT/responses.jsonl" "$OUT/cold_qft8.qasm" <<'EOF'
import json
import sys

lines = [json.loads(line) for line in open(sys.argv[1])]
stats = lines[-1]["stats"]
responses = {r["id"]: r for r in lines[:-1]}
assert len(responses) == 8, sorted(responses)

for r in responses.values():
    assert r["code"] == 0, r

for rid, r in responses.items():
    if rid.startswith("p1-"):
        assert r["tier"] == "search", r
    else:
        mate = responses["p1-" + rid[3:]]
        assert r["tier"] == "cache", r
        assert r["qasm"] == mate["qasm"], rid

cold = open(sys.argv[2]).read()
assert responses["p2-qft8"]["qasm"] == cold, \
    "cache hit differs from cold toqm_map output"

cache = stats["cache"]
assert cache["hits"] == 4, cache
assert cache["exact_hits"] == 4, cache
assert cache["misses"] == 4, cache
assert cache["evictions"] == 0, cache
assert cache["entries"] == 4, cache
assert stats["tier"]["search"] == 4, stats["tier"]
assert stats["tier"]["cache"] == 4, stats["tier"]
# Two distinct devices -> exactly two warm arch constructions.
assert stats["arch"]["entries"] == 2, stats["arch"]
assert stats["arch"]["misses"] == 2, stats["arch"]

hit_rate = cache["hits"] / (cache["hits"] + cache["misses"])
print(f"second pass: 4/4 cache hits (overall hit rate "
      f"{hit_rate:.0%}), outputs byte-identical to first pass "
      f"and to cold toqm_map")
EOF

echo "serve smoke ok"
