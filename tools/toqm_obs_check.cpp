/**
 * @file
 * toqm_obs_check — CI validator for the observability artifacts.
 *
 *   toqm_obs_check --trace FILE [--require-phases a,b,c]
 *   toqm_obs_check --metrics FILE
 *   toqm_obs_check --stats-line FILE
 *
 * Checks (any subset may be given; all must pass):
 *  - trace: valid JSON, has a traceEvents array, timestamps are
 *    monotonically non-decreasing, every "B" is closed by a matching
 *    "E" (balanced, LIFO per name), and at least one counter ("C")
 *    event carries a numeric args.value.  With --require-phases,
 *    each named phase must appear as a complete span.
 *  - metrics: valid JSON with numeric `schemaVersion`, a `counters`
 *    object and a `gauges` object (the MetricsRegistry shape).
 *  - stats-line: the file's first '{'-led line (toqm_map prints the
 *    stats line to stderr alongside heartbeats and diagnostics) is a
 *    schemaVersion>=2 stats report with the v1 keys intact plus
 *    arch/latency/detail.
 *
 * Exit code 0 = all artifacts valid, 1 = any check failed,
 * 2 = usage.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using toqm::obs::json::Value;
using toqm::obs::json::ValuePtr;

int g_failures = 0;

void
fail(const std::string &what)
{
    std::fprintf(stderr, "FAIL: %s\n", what.c_str());
    ++g_failures;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        fail("cannot open " + path);
        return "";
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (const char c : s) {
        if (c == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

void
checkTrace(const std::string &path,
           const std::vector<std::string> &required_phases)
{
    const std::string text = slurp(path);
    if (text.empty())
        return;
    ValuePtr root;
    try {
        root = toqm::obs::json::parse(text);
    } catch (const std::exception &e) {
        fail(path + ": " + e.what());
        return;
    }
    const ValuePtr events = root->get("traceEvents");
    if (!events || !events->isArray()) {
        fail(path + ": no traceEvents array");
        return;
    }

    double last_ts = -1.0;
    std::vector<std::string> span_stack;
    std::vector<std::string> completed_spans;
    std::size_t counter_events = 0;
    for (const ValuePtr &ev : events->asArray()) {
        const ValuePtr name = ev->get("name");
        const ValuePtr ph = ev->get("ph");
        const ValuePtr ts = ev->get("ts");
        if (!name || !name->isString() || !ph || !ph->isString() ||
            !ts || !ts->isNumber()) {
            fail(path + ": event missing name/ph/ts");
            return;
        }
        if (ts->asNumber() < last_ts) {
            fail(path + ": timestamps not monotonic at event '" +
                 name->asString() + "'");
            return;
        }
        last_ts = ts->asNumber();
        const std::string &phase = ph->asString();
        if (phase == "B") {
            span_stack.push_back(name->asString());
        } else if (phase == "E") {
            if (span_stack.empty() ||
                span_stack.back() != name->asString()) {
                fail(path + ": unbalanced E event '" +
                     name->asString() + "'");
                return;
            }
            completed_spans.push_back(span_stack.back());
            span_stack.pop_back();
        } else if (phase == "C") {
            const ValuePtr args = ev->get("args");
            const ValuePtr value = args ? args->get("value") : nullptr;
            if (!value || !value->isNumber()) {
                fail(path + ": counter event without numeric value");
                return;
            }
            ++counter_events;
        }
    }
    if (!span_stack.empty()) {
        fail(path + ": " + std::to_string(span_stack.size()) +
             " span(s) never closed (first: '" + span_stack.front() +
             "')");
        return;
    }
    if (counter_events == 0) {
        fail(path + ": no sampled gauge (counter) events");
        return;
    }
    for (const std::string &want : required_phases) {
        bool found = false;
        for (const std::string &got : completed_spans)
            found = found || got == want;
        if (!found) {
            fail(path + ": required phase span '" + want +
                 "' missing");
        }
    }
    std::printf("ok: %s (%zu events, %zu counter samples)\n",
                path.c_str(), events->asArray().size(),
                counter_events);
}

void
checkMetrics(const std::string &path)
{
    const std::string text = slurp(path);
    if (text.empty())
        return;
    ValuePtr root;
    try {
        root = toqm::obs::json::parse(text);
    } catch (const std::exception &e) {
        fail(path + ": " + e.what());
        return;
    }
    const ValuePtr version = root->get("schemaVersion");
    if (!version || !version->isNumber()) {
        fail(path + ": missing numeric schemaVersion");
        return;
    }
    const ValuePtr counters = root->get("counters");
    const ValuePtr gauges = root->get("gauges");
    if (!counters || !counters->isObject() || !gauges ||
        !gauges->isObject()) {
        fail(path + ": missing counters/gauges objects");
        return;
    }
    for (const auto &[key, value] : counters->asObject()) {
        if (!value->isNumber()) {
            fail(path + ": counter '" + key + "' is not numeric");
            return;
        }
    }
    std::printf("ok: %s (schemaVersion %d, %zu counters, "
                "%zu gauges)\n",
                path.c_str(), static_cast<int>(version->asNumber()),
                counters->asObject().size(),
                gauges->asObject().size());
}

void
checkStatsLine(const std::string &path)
{
    const std::string text = slurp(path);
    if (text.empty())
        return;
    // The stats line shares stderr with heartbeat lines and other
    // diagnostics: validate the first line that looks like JSON.
    std::string line;
    std::istringstream lines(text);
    while (std::getline(lines, line) &&
           (line.empty() || line[0] != '{')) {
    }
    if (line.empty() || line[0] != '{') {
        fail(path + ": no JSON stats line found");
        return;
    }
    ValuePtr root;
    try {
        root = toqm::obs::json::parse(line);
    } catch (const std::exception &e) {
        fail(path + ": " + e.what());
        return;
    }
    static const char *v1_keys[] = {
        "mapper",  "status",    "cycles",          "swaps",
        "expanded", "generated", "filtered",       "trims",
        "rounds",  "max_queue", "peak_pool_bytes", "peak_live_nodes",
        "seconds"};
    for (const char *key : v1_keys) {
        if (!root->has(key)) {
            fail(path + ": stats line missing v1 key '" +
                 std::string(key) + "'");
            return;
        }
    }
    const ValuePtr version = root->get("schemaVersion");
    if (!version || !version->isNumber() || version->asNumber() < 2) {
        fail(path + ": stats line schemaVersion < 2");
        return;
    }
    if (!root->has("arch") || !root->has("latency") ||
        !root->has("detail")) {
        fail(path + ": stats line missing arch/latency/detail");
        return;
    }
    // Objective annotations inside the detail object are additive and
    // optional (only emitted for noise-aware runs), but when present
    // they must be typed: "objective" is a string naming the cost
    // function, "cost" is its decoded numeric value, and "fidelity"
    // (noise-model success probability) is a number in [0, 1].
    const ValuePtr detail = root->get("detail");
    const ValuePtr objective =
        detail && detail->isObject() ? detail->get("objective") : nullptr;
    if (objective) {
        if (!objective->isString()) {
            fail(path + ": detail.objective is not a string");
            return;
        }
        const ValuePtr cost = detail->get("cost");
        if (!cost || !cost->isNumber()) {
            fail(path + ": detail.objective without numeric "
                        "detail.cost");
            return;
        }
        const ValuePtr fidelity = detail->get("fidelity");
        if (fidelity &&
            (!fidelity->isNumber() || fidelity->asNumber() < 0.0 ||
             fidelity->asNumber() > 1.0)) {
            fail(path + ": detail.fidelity outside [0, 1]");
            return;
        }
    }
    // The degradation block is optional (only emitted when the driver
    // walked a fallback chain), but when present it must be
    // well-formed: requested/delivered strings plus a steps array of
    // {stage, status} objects.
    const ValuePtr degradation = root->get("degradation");
    if (degradation) {
        if (!degradation->isObject() ||
            !degradation->get("requested") ||
            !degradation->get("requested")->isString() ||
            !degradation->get("delivered") ||
            !degradation->get("delivered")->isString()) {
            fail(path + ": malformed degradation block");
            return;
        }
        const ValuePtr steps = degradation->get("steps");
        if (!steps || !steps->isArray() || steps->asArray().empty()) {
            fail(path + ": degradation block missing steps");
            return;
        }
        for (const ValuePtr &step : steps->asArray()) {
            if (!step->isObject() || !step->get("stage") ||
                !step->get("stage")->isString() ||
                !step->get("status") ||
                !step->get("status")->isString()) {
                fail(path + ": malformed degradation step");
                return;
            }
        }
    }
    // The serve block is optional (only emitted when a serve-layer
    // feature — the warm result cache, the structured tier, or the
    // toqm_serve daemon — answered or annotated the run), but when
    // present it must be well-formed: a known tier name and, when a
    // cache sub-object exists, numeric hit/miss/eviction counters.
    const ValuePtr serve = root->get("serve");
    if (serve) {
        if (!serve->isObject()) {
            fail(path + ": serve block is not an object");
            return;
        }
        const ValuePtr tier = serve->get("tier");
        if (!tier || !tier->isString()) {
            fail(path + ": serve block missing tier string");
            return;
        }
        const std::string &tier_name = tier->asString();
        if (tier_name != "cache" && tier_name != "cache-canonical" &&
            tier_name != "structured" && tier_name != "search") {
            fail(path + ": unknown serve tier '" + tier_name + "'");
            return;
        }
        const ValuePtr cache = serve->get("cache");
        if (cache) {
            if (!cache->isObject()) {
                fail(path + ": serve.cache is not an object");
                return;
            }
            for (const char *key : {"hits", "misses", "evictions"}) {
                const ValuePtr counter = cache->get(key);
                if (!counter || !counter->isNumber() ||
                    counter->asNumber() < 0) {
                    fail(path + ": serve.cache." + std::string(key) +
                         " missing or not a non-negative number");
                    return;
                }
            }
        } else if (tier_name == "cache" ||
                   tier_name == "cache-canonical") {
            // A cache-tier answer without cache counters is a lie.
            fail(path + ": serve tier '" + tier_name +
                 "' without a cache block");
            return;
        }
    }
    std::printf("ok: %s (stats line schemaVersion %d%s%s%s)\n",
                path.c_str(), static_cast<int>(version->asNumber()),
                objective ? ", objective annotation valid" : "",
                degradation ? ", degradation block valid" : "",
                serve ? ", serve block valid" : "");
}

[[noreturn]] void
usage(int code)
{
    std::fprintf(stderr,
                 "usage: toqm_obs_check [--trace FILE] "
                 "[--require-phases a,b,c]\n"
                 "       [--metrics FILE] [--stats-line FILE]\n");
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string metrics_path;
    std::string stats_path;
    std::vector<std::string> required_phases;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(2);
            return argv[++i];
        };
        if (arg == "--trace")
            trace_path = next();
        else if (arg == "--metrics")
            metrics_path = next();
        else if (arg == "--stats-line")
            stats_path = next();
        else if (arg == "--require-phases")
            required_phases = splitCommas(next());
        else if (arg == "--help" || arg == "-h")
            usage(0);
        else
            usage(2);
    }
    if (trace_path.empty() && metrics_path.empty() &&
        stats_path.empty()) {
        usage(2);
    }

    if (!trace_path.empty())
        checkTrace(trace_path, required_phases);
    if (!metrics_path.empty())
        checkMetrics(metrics_path);
    if (!stats_path.empty())
        checkStatsLine(stats_path);

    return g_failures == 0 ? 0 : 1;
}
