/**
 * @file
 * libFuzzer harness for the QASM front end (lexer, parser, importer).
 *
 * The contract under fuzzing: arbitrary bytes may be rejected with a
 * typed std::exception, but must never crash, hang, or trip a
 * sanitizer.  Includes resolve only the built-in qelib1.inc — disk
 * access from the fuzzer would make runs nondeterministic and slow.
 *
 * Build with -DTOQM_BUILD_FUZZERS=ON (requires clang):
 *   clang++ -fsanitize=fuzzer,address ...
 * Run:
 *   ./toqm_fuzz_qasm corpus/ -max_total_time=60
 */

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>

#include "qasm/importer.hpp"
#include "qasm/parser.hpp"
#include "qasm/qelib.hpp"

namespace {

/** qelib-only resolver: no filesystem reads under fuzzing. */
std::string
fuzzResolve(const std::string &path)
{
    if (path == "qelib1.inc")
        return toqm::qasm::qelib1Source();
    throw std::runtime_error("include not available under fuzzing: " +
                             path);
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t *data, std::size_t size)
{
    const std::string source(reinterpret_cast<const char *>(data), size);
    try {
        toqm::qasm::Program program =
            toqm::qasm::parseString(source, fuzzResolve);
        // Tight expansion limits: the fuzzer should spend its time
        // exploring parser states, not grinding out huge circuits
        // from inputs that are already known-valid.
        toqm::qasm::ImportOptions options;
        options.allowConditionals = true;
        options.maxExpansionDepth = 16;
        options.maxExpandedGates = 65'536;
        options.maxQubits = 4'096;
        toqm::qasm::importProgram(program, options);
    } catch (const std::exception &) {
        // Typed rejection is the expected outcome for invalid input.
    }
    return 0;
}
