// libFuzzer harness for the calibration JSON loader.
//
// Feeds arbitrary bytes through objective::CalibrationData::parse and
// expects it to either return a fully-validated record or throw a
// typed CalibrationError -- never crash, leak, index out of bounds, or
// loop forever.  Rejections are part of the contract (positioned
// errors for malformed JSON and for semantically invalid records), so
// exceptions are swallowed; the sanitizers do the actual checking.
//
// Build (clang only):
//   cmake -B build -S . -DTOQM_BUILD_FUZZERS=ON
//   cmake --build build --target toqm_fuzz_calibration
// Run:
//   ./build/tools/toqm_fuzz_calibration examples/calibration/ \
//       -max_total_time=60 -max_len=65536
//
// Seeding with the shipped calibration files gives the fuzzer valid
// records to mutate, which reaches the semantic validators (rate
// ranges, edge indices, array lengths) rather than only the JSON
// lexer.

#include "objective/calibration.hpp"

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size) {
    const std::string text(reinterpret_cast<const char *>(data), size);
    try {
        const toqm::objective::CalibrationData cal =
            toqm::objective::CalibrationData::parse(text);
        // Exercise the resolved-lookup paths and the serializer on
        // every record that survives validation; toJson output must
        // itself be parseable (round-trip stability is unit-tested,
        // here we only care that it does not crash).
        if (cal.numQubits > 0) {
            (void)cal.oneQubit(0);
            (void)cal.twoQubit(0, cal.numQubits - 1);
            (void)cal.swap(cal.numQubits - 1, 0);
        }
        (void)toqm::objective::CalibrationData::parse(cal.toJson());
    } catch (const std::exception &) {
        // Typed rejection: expected for invalid input.
    }
    return 0;
}
