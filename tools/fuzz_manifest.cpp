// libFuzzer harness for the hardened --manifest parser.
//
// Feeds arbitrary bytes through parallel::parseManifest and expects
// it to either return a bounded entry list or throw a positioned
// ManifestError -- never crash, read out of bounds, or loop forever.
// Rejections are part of the contract (NUL bytes, control characters,
// overlong lines, entry-cap overflow all have documented positioned
// errors), so exceptions are swallowed; the sanitizers do the actual
// checking.
//
// Build (clang only):
//   cmake -B build -S . -DTOQM_BUILD_FUZZERS=ON
//   cmake --build build --target toqm_fuzz_manifest
// Run:
//   ./build/tools/toqm_fuzz_manifest -max_total_time=60 -max_len=65536
//
// Small limits are used alongside the defaults so the fuzzer reaches
// the cap-enforcement paths (entry cap, line-length cap) without
// needing multi-kilobyte inputs.

#include "parallel/manifest.hpp"

#include <cstddef>
#include <cstdint>
#include <exception>
#include <sstream>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t *data,
                                      std::size_t size) {
    const std::string text(reinterpret_cast<const char *>(data), size);
    try {
        std::istringstream in(text);
        (void)toqm::parallel::parseManifest(in, "<fuzz>");
    } catch (const std::exception &) {
        // Positioned rejection: expected for malformed input.
    }
    try {
        toqm::parallel::ManifestLimits limits;
        limits.maxEntries = 4;
        limits.maxLineLength = 16;
        std::istringstream in(text);
        (void)toqm::parallel::parseManifest(in, "<fuzz>", limits);
    } catch (const std::exception &) {
    }
    return 0;
}
