/**
 * @file
 * toqm_map — the command-line compiler driver.
 *
 * Reads one or more OpenQASM 2.0 files (or stdin), maps them onto a
 * chosen architecture with the selected mapper, verifies the result,
 * and writes hardware-compliant OpenQASM 2.0 to stdout.
 *
 *   toqm_map [options] [input.qasm ...]
 *     --arch NAME        lnn<N>, grid<R>x<C>, ibmqx2, tokyo,
 *                        melbourne, aspen-4        (default: tokyo)
 *     --mapper KIND      optimal | heuristic | sabre | zulehner |
 *                        portfolio                 (default: heuristic)
 *     --portfolio-size N entries raced in portfolio mode (default 4:
 *                        A*, A* without the filter, IDA*, heuristic);
 *                        the stats JSON reports which entry won
 *     --jobs N           map multiple inputs concurrently on N
 *                        worker threads (default 1); output and
 *                        stats lines stay ordered by the INPUT list,
 *                        never by completion order
 *     --manifest FILE    read additional input paths from FILE (one
 *                        per line; blank lines and # comments skipped)
 *     --out-dir DIR      write each input's mapped circuit to
 *                        DIR/<input basename> instead of stdout;
 *                        inputs sharing a basename get deterministic
 *                        `stem.N.ext` names (N = 2, 3, ... in input
 *                        order) instead of overwriting each other
 *                        (batch output to stdout is otherwise
 *                        concatenated with `// ====` separators)
 *     --latency L1,L2,LS 1q, 2q and swap cycles    (default: 1,2,6)
 *     --objective NAME   cost the search minimises: cycles (default,
 *                        the paper's time-optimal objective) |
 *                        fidelity (encoded -ln success probability
 *                        from calibration data) | pareto
 *                        (lexicographic cycles-then-error-weight);
 *                        sabre/zulehner support cycles only
 *     --calibration FILE per-qubit / per-edge error rates as JSON
 *                        (see examples/calibration/); fidelity and
 *                        pareto runs without it synthesize a
 *                        deterministic calibration for the device.
 *                        With any objective it also annotates the
 *                        stats line with the decoded cost and the
 *                        noise-model success probability
 *     --search-initial   optimal mode: also search the layout
 *     --no-mixing        optimal mode: forbid concurrent GT+swap
 *     --all-optimal      optimal mode: report #optimal solutions
 *     --max-nodes N      optimal mode node budget
 *     --deadline-ms N    wall-clock deadline for the search; on
 *                        expiry the best incumbent found so far is
 *                        returned (flagged non-optimal)
 *     --max-pool-mb N    node-pool memory ceiling, same semantics
 *     --fallback POLICY  none (default) | heuristic: when the
 *                        optimal search stops without any incumbent,
 *                        degrade to the heuristic mapper and exit 0
 *     --stats            print mapping statistics to stderr
 *     --stats-json       print the unified search-kernel run report
 *                        as one JSON line to stderr
 *     --verify           verify structurally (and semantically if
 *                        the circuit is small enough)
 *     --timeline         print a cycle-occupancy chart to stderr
 *     --layout KIND      seed layout: auto | greedy | annealed
 *     --dot              emit the device graph (with the initial
 *                        layout) as Graphviz DOT instead of QASM
 *     --json             emit the mapping record as JSON instead
 *     --restore-layout   append swaps returning every qubit to its
 *                        initial position (token swapping)
 *     --enforce-directions  rewrite wrong-way CXs for devices with
 *                        directed links (ibmqx2 calibration)
 *     --trace FILE       write a Chrome trace-event JSON (phase
 *                        spans + sampled search gauges; open in
 *                        Perfetto or chrome://tracing)
 *     --progress[=SECS]  throttled stderr heartbeat for long runs
 *                        (default every 2 s)
 *     --metrics-json[=FILE]  emit the versioned MetricsRegistry
 *                        snapshot (stderr, or FILE)
 *     --obs-sample N     sample search gauges every N expansions
 *     --retries N        re-run a failed job up to N more times;
 *                        only the retryable failure classes are
 *                        retried (allocation failure — with the pool
 *                        cap halved each attempt — transient IO
 *                        faults, and verification-gate failures);
 *                        after the retries a configured
 *                        --fallback=heuristic runs as the last resort
 *     --retry-backoff-ms B  sleep B<<attempt ms between retries
 *                        (exponential backoff; default 0)
 *     --journal FILE     crash-safe append-only completion journal
 *                        (requires --out-dir); re-running the same
 *                        batch skips every input whose journaled
 *                        output already matches the bytes on disk,
 *                        so a killed batch resumes where it stopped
 *     --fault-plan SPEC  deterministic fault injection for testing
 *                        (site@N:action entries — see
 *                        --list-fault-sites and DESIGN.md §4.6);
 *                        also read from the TOQM_FAULT environment
 *                        variable; requires a build configured with
 *                        -DTOQM_ENABLE_FAULT_INJECTION=ON
 *     --list-fault-sites print the registered fault sites and exit
 *
 * Every mapping — degraded or not, --verify or not — passes a
 * structural verification gate before any circuit is emitted: a
 * result that fails the gate is demoted to exit 3 (and retried under
 * --retries) instead of being written out.
 *
 * Exit codes:
 *   0  success (requested mapping delivered, or a --fallback
 *      delivery the caller opted into)
 *   1  generic error (bad input, internal failure; this includes
 *      malformed --calibration content, reported with a byte offset
 *      or key path)
 *   2  usage error (this includes an unknown --objective name and
 *      the unsupported baseline+objective combinations)
 *   3  verification failure (degraded results are ALWAYS verified
 *      structurally, even without --verify)
 *   4  node budget exhausted before optimality was proven
 *   5  instance proven unsolvable on this device
 *   6  wall-clock deadline (--deadline-ms) exceeded
 *   7  memory ceiling (--max-pool-mb) exceeded, or allocation failed
 *   8  cancelled (SIGINT/SIGTERM); the unwind is graceful — armed
 *      guards stop the searches and incumbents are still delivered
 *   9  forced abort: a SECOND SIGINT/SIGTERM arrived during the
 *      graceful unwind (the operator really means stop NOW)
 * For 4/6/7/8 the best incumbent mapping, when one exists, is still
 * written to stdout and recorded in the stats-json `degradation`
 * block; with --fallback=heuristic a successful degraded delivery
 * turns the exit code into 0.
 *
 * Batch exit code (--jobs / multiple inputs): every input runs to
 * completion and the process exits with the WORST (numeric max) of
 * the per-input codes, so one degraded or failed circuit marks the
 * batch with its most severe failure class while the other circuits
 * still deliver their results.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "arch/architectures.hpp"
#include "arch/token_swapping.hpp"
#include "fault/fault.hpp"
#include "ir/direction.hpp"
#include "ir/export.hpp"
#include "baselines/sabre.hpp"
#include "baselines/zulehner.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/schedule.hpp"
#include "objective/objective.hpp"
#include "obs/observer.hpp"
#include "parallel/batch.hpp"
#include "parallel/journal.hpp"
#include "parallel/manifest.hpp"
#include "parallel/portfolio.hpp"
#include "parallel/thread_pool.hpp"
#include "qasm/importer.hpp"
#include "qasm/writer.hpp"
#include "search/resource_guard.hpp"
#include "search/search_stats.hpp"
#include "serve/canonical.hpp"
#include "serve/result_cache.hpp"
#include "serve/structured.hpp"
#include "serve/warm.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "toqm/initial_layout.hpp"
#include "toqm/mapper.hpp"

namespace {

using namespace toqm;

struct Options
{
    std::string arch = "tokyo";
    std::string mapper = "heuristic";
    std::string objective = "cycles";
    std::string calibrationPath; // empty = synthesize when needed
    int lat1 = 1, lat2 = 2, lats = 6;
    bool searchInitial = false;
    bool noMixing = false;
    bool allOptimal = false;
    bool stats = false;
    bool statsJson = false;
    bool verify = false;
    bool timeline = false;
    bool emitDot = false;
    bool emitJson = false;
    bool restoreLayout = false;
    bool enforceDirections = false;
    std::string layoutStrategy = "auto"; // auto|greedy|annealed
    std::uint64_t maxNodes = 20'000'000;
    std::vector<std::string> inputs; // empty = stdin

    // Serve-layer surface (toqm_servecore).
    /** --warm-cache byte budget in MiB (0 = off): a process-global
     *  exact-repeat result cache shared by every job of a batch. */
    std::size_t warmCacheMb = 0;
    /** --structured: try the closed-form QFT tier before any search. */
    bool structured = false;

    // Batch / portfolio surface (toqm_parallel).
    unsigned jobs = 1;
    std::string manifestPath; // empty = none
    std::string outDir;       // empty = stdout
    int portfolioSize = 4;

    // Resource guard + degradation policy.
    std::uint64_t deadlineMs = 0; // 0 = none
    std::uint64_t maxPoolMb = 0;  // 0 = none
    std::string fallback = "none"; // none|heuristic

    // Robustness surface (toqm_fault + the retry layer).
    std::string faultPlan;           // empty = none (TOQM_FAULT too)
    int retries = 0;                 // extra attempts per job
    std::uint64_t retryBackoffMs = 0;
    std::string journalPath;         // empty = no journal

    // Observability surface (toqm_obs).
    std::string tracePath;        // empty = no trace
    bool progress = false;
    double progressInterval = obs::Observer::kDefaultProgressInterval;
    bool metricsJson = false;
    std::string metricsPath;      // empty = stderr
    std::uint64_t obsSample = obs::Observer::kDefaultSampleInterval;
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::fprintf(stderr,
                 "usage: %s [--arch NAME] [--mapper optimal|heuristic"
                 "|sabre|zulehner|portfolio]\n"
                 "       [--objective cycles|fidelity|pareto] "
                 "[--calibration FILE]\n"
                 "       [--latency 1q,2q,swap] [--search-initial] "
                 "[--no-mixing]\n"
                 "       [--all-optimal] [--max-nodes N] [--stats] "
                 "[--stats-json] [--verify] [--timeline]\n"
                 "       [--deadline-ms N] [--max-pool-mb N] "
                 "[--fallback none|heuristic]\n"
                 "       [--portfolio-size N]\n"
                 "       [--jobs N] [--manifest FILE] [--out-dir DIR]\n"
                 "       [--layout auto|greedy|annealed] [--dot] "
                 "[--json]\n"
                 "       [--restore-layout] [--enforce-directions]\n"
                 "       [--trace FILE] [--progress[=SECS]] "
                 "[--metrics-json[=FILE]] [--obs-sample N]\n"
                 "       [--warm-cache[=MB]] [--structured]\n"
                 "       [--retries N] [--retry-backoff-ms B] "
                 "[--journal FILE]\n"
                 "       [--fault-plan SPEC] [--list-fault-sites]\n"
                 "       [input.qasm ...]\n"
                 "\n"
                 "exit codes:\n"
                 "  0  success (or an opted-in --fallback delivery)\n"
                 "  1  generic error (including malformed "
                 "--calibration content)\n"
                 "  2  usage error (including an unknown --objective "
                 "name)\n"
                 "  3  verification failure (every mapping passes a "
                 "structural gate before emission)\n"
                 "  4  node budget exhausted (--max-nodes)\n"
                 "  5  instance proven unsolvable on this device\n"
                 "  6  wall-clock deadline exceeded (--deadline-ms)\n"
                 "  7  memory ceiling exceeded (--max-pool-mb) or "
                 "allocation failure\n"
                 "  8  cancelled (SIGINT/SIGTERM)\n"
                 "  9  forced abort (second SIGINT/SIGTERM during "
                 "the graceful unwind)\n"
                 "For 4/6/7/8 the best incumbent mapping, when one "
                 "exists, is still written to stdout.\n"
                 "With multiple inputs (--jobs / --manifest) every "
                 "input runs to completion, per-input\n"
                 "output stays in input-list order, and the process "
                 "exits with the WORST (numeric\n"
                 "max) per-input code.  --out-dir names files by "
                 "input basename; colliding\n"
                 "basenames are uniquified as stem.N.ext in input "
                 "order.\n",
                 argv0);
    std::exit(code);
}

/** The exit code a run report maps to (see the table in usage()). */
int
exitCodeFor(search::SearchStatus status)
{
    switch (status) {
      case search::SearchStatus::Solved:
        return 0;
      case search::SearchStatus::BudgetExhausted:
        return 4;
      case search::SearchStatus::Infeasible:
        return 5;
      case search::SearchStatus::DeadlineExceeded:
        return 6;
      case search::SearchStatus::MemoryExhausted:
        return 7;
      case search::SearchStatus::Cancelled:
        return 8;
    }
    return 1;
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0], 2);
            return argv[++i];
        };
        if (arg == "--arch") {
            opt.arch = next();
        } else if (arg == "--mapper") {
            opt.mapper = next();
        } else if (arg == "--objective") {
            opt.objective = next();
        } else if (arg.rfind("--objective=", 0) == 0) {
            opt.objective = arg.substr(12);
        } else if (arg == "--calibration") {
            opt.calibrationPath = next();
        } else if (arg.rfind("--calibration=", 0) == 0) {
            opt.calibrationPath = arg.substr(14);
        } else if (arg == "--latency") {
            const std::string spec = next();
            if (std::sscanf(spec.c_str(), "%d,%d,%d", &opt.lat1,
                            &opt.lat2, &opt.lats) != 3) {
                usage(argv[0], 2);
            }
        } else if (arg == "--search-initial") {
            opt.searchInitial = true;
        } else if (arg == "--no-mixing") {
            opt.noMixing = true;
        } else if (arg == "--all-optimal") {
            opt.allOptimal = true;
        } else if (arg == "--max-nodes") {
            opt.maxNodes = std::stoull(next());
        } else if (arg == "--deadline-ms") {
            opt.deadlineMs = std::stoull(next());
        } else if (arg.rfind("--deadline-ms=", 0) == 0) {
            opt.deadlineMs = std::stoull(arg.substr(14));
        } else if (arg == "--max-pool-mb") {
            opt.maxPoolMb = std::stoull(next());
        } else if (arg.rfind("--max-pool-mb=", 0) == 0) {
            opt.maxPoolMb = std::stoull(arg.substr(14));
        } else if (arg == "--fallback") {
            opt.fallback = next();
        } else if (arg.rfind("--fallback=", 0) == 0) {
            opt.fallback = arg.substr(11);
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--stats-json") {
            opt.statsJson = true;
        } else if (arg == "--verify") {
            opt.verify = true;
        } else if (arg == "--timeline") {
            opt.timeline = true;
        } else if (arg == "--dot") {
            opt.emitDot = true;
        } else if (arg == "--json") {
            opt.emitJson = true;
        } else if (arg == "--layout") {
            opt.layoutStrategy = next();
        } else if (arg == "--restore-layout") {
            opt.restoreLayout = true;
        } else if (arg == "--enforce-directions") {
            opt.enforceDirections = true;
        } else if (arg == "--trace") {
            opt.tracePath = next();
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.tracePath = arg.substr(8);
        } else if (arg == "--progress") {
            opt.progress = true;
        } else if (arg.rfind("--progress=", 0) == 0) {
            opt.progress = true;
            opt.progressInterval = std::stod(arg.substr(11));
            if (opt.progressInterval <= 0.0)
                usage(argv[0], 2);
        } else if (arg == "--metrics-json") {
            opt.metricsJson = true;
        } else if (arg.rfind("--metrics-json=", 0) == 0) {
            opt.metricsJson = true;
            opt.metricsPath = arg.substr(15);
        } else if (arg == "--obs-sample") {
            opt.obsSample = std::stoull(next());
            if (opt.obsSample == 0)
                usage(argv[0], 2);
        } else if (arg == "--jobs") {
            opt.jobs = static_cast<unsigned>(std::stoul(next()));
            if (opt.jobs == 0)
                usage(argv[0], 2);
        } else if (arg.rfind("--jobs=", 0) == 0) {
            opt.jobs = static_cast<unsigned>(
                std::stoul(arg.substr(7)));
            if (opt.jobs == 0)
                usage(argv[0], 2);
        } else if (arg == "--manifest") {
            opt.manifestPath = next();
        } else if (arg.rfind("--manifest=", 0) == 0) {
            opt.manifestPath = arg.substr(11);
        } else if (arg == "--out-dir") {
            opt.outDir = next();
        } else if (arg.rfind("--out-dir=", 0) == 0) {
            opt.outDir = arg.substr(10);
        } else if (arg == "--portfolio-size") {
            opt.portfolioSize = std::stoi(next());
            if (opt.portfolioSize < 1)
                usage(argv[0], 2);
        } else if (arg.rfind("--portfolio-size=", 0) == 0) {
            opt.portfolioSize = std::stoi(arg.substr(17));
            if (opt.portfolioSize < 1)
                usage(argv[0], 2);
        } else if (arg == "--retries") {
            opt.retries = std::stoi(next());
            if (opt.retries < 0)
                usage(argv[0], 2);
        } else if (arg.rfind("--retries=", 0) == 0) {
            opt.retries = std::stoi(arg.substr(10));
            if (opt.retries < 0)
                usage(argv[0], 2);
        } else if (arg == "--retry-backoff-ms") {
            opt.retryBackoffMs = std::stoull(next());
        } else if (arg.rfind("--retry-backoff-ms=", 0) == 0) {
            opt.retryBackoffMs = std::stoull(arg.substr(19));
        } else if (arg == "--warm-cache") {
            opt.warmCacheMb = 64;
        } else if (arg.rfind("--warm-cache=", 0) == 0) {
            opt.warmCacheMb = std::stoull(arg.substr(13));
            if (opt.warmCacheMb == 0)
                usage(argv[0], 2);
        } else if (arg == "--structured") {
            opt.structured = true;
        } else if (arg == "--journal") {
            opt.journalPath = next();
        } else if (arg.rfind("--journal=", 0) == 0) {
            opt.journalPath = arg.substr(10);
        } else if (arg == "--fault-plan") {
            opt.faultPlan = next();
        } else if (arg.rfind("--fault-plan=", 0) == 0) {
            opt.faultPlan = arg.substr(13);
        } else if (arg == "--list-fault-sites") {
            // Always available (the registry lives in toqm_fault,
            // which is linked regardless of whether the hooks are
            // compiled in), so sweep scripts can enumerate sites
            // without probing the build configuration.
            for (const std::string &site : fault::knownSites())
                std::printf("%s\n", site.c_str());
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            usage(argv[0], 2);
        } else {
            opt.inputs.push_back(arg);
        }
    }
    if (opt.fallback != "none" && opt.fallback != "heuristic") {
        std::fprintf(stderr, "unknown --fallback policy: %s\n",
                     opt.fallback.c_str());
        usage(argv[0], 2);
    }
    if (!opt.journalPath.empty() && opt.outDir.empty()) {
        // The journal keys completion on --out-dir file names; with
        // concatenated stdout there is nothing durable to resume.
        std::fprintf(stderr, "--journal requires --out-dir\n");
        usage(argv[0], 2);
    }
    if (opt.layoutStrategy != "auto" &&
        opt.layoutStrategy != "greedy" &&
        opt.layoutStrategy != "annealed") {
        std::fprintf(stderr, "unknown --layout strategy: %s\n",
                     opt.layoutStrategy.c_str());
        usage(argv[0], 2);
    }
    objective::ObjectiveKind obj_kind;
    if (!objective::objectiveKindFromString(opt.objective,
                                            obj_kind)) {
        std::fprintf(stderr, "unknown --objective: %s\n",
                     opt.objective.c_str());
        usage(argv[0], 2);
    }
    if ((opt.mapper == "sabre" || opt.mapper == "zulehner") &&
        obj_kind != objective::ObjectiveKind::Cycles) {
        // The baselines have no cost-table hook: they minimise swap
        // count / cycles by construction and cannot honor another
        // objective, so silently ignoring it would misreport results.
        std::fprintf(stderr,
                     "--objective %s is not supported by the %s "
                     "baseline (cycles only)\n",
                     opt.objective.c_str(), opt.mapper.c_str());
        usage(argv[0], 2);
    }
    return opt;
}

/** One degradation-chain step: which stage ran and how it ended. */
struct DegradationStep
{
    std::string stage;
    std::string status;
};

/**
 * Render the `degradation` block of the stats line: which mapper was
 * requested, what was actually delivered ("none" if nothing), and
 * the chain of stages walked to get there.
 */
std::string
degradationJson(const std::string &requested,
                const std::string &delivered,
                const std::vector<DegradationStep> &steps)
{
    std::string out = "{\"requested\":\"" + requested +
                      "\",\"delivered\":\"" + delivered +
                      "\",\"steps\":[";
    for (size_t i = 0; i < steps.size(); ++i) {
        if (i != 0)
            out += ',';
        out += "{\"stage\":\"" + steps[i].stage +
               "\",\"status\":\"" + steps[i].status + "\"}";
    }
    out += "]}";
    return out;
}

/** Record a degradation step as a trace instant + metrics counter.
 *  @p event must be a string literal (the trace sink keeps the
 *  pointer). */
void
noteDegradation(const char *event)
{
    obs::Observer &o = obs::Observer::global();
    if (o.traceEnabled())
        o.instant(event);
    if (o.metricsEnabled())
        o.metrics().increment(event);
}

/**
 * --warm-cache: the process-global exact-repeat result cache.  Every
 * job of a batch shares it, so a manifest that maps the same input
 * with the same flags twice pays for one search.  Exact-fingerprint
 * hits only — the stored stdout bytes are replayed verbatim, which
 * keeps every delivery byte-identical to a cold run by construction
 * (canonical-equivalent reuse with layout translation lives in the
 * toqm_serve daemon, where re-verification gates each hit).
 */
std::unique_ptr<serve::ResultCache> g_warmCache;

/**
 * The configuration half of the warm-cache key: every option that
 * can change a single byte of stdout (or the exit code) of a
 * successful run.  Pure-stderr diagnostics (--stats, --timeline,
 * --progress, --trace, --metrics-json) are deliberately absent.
 */
std::string
cacheConfigText(const Options &opt)
{
    std::string text = "arch=" + opt.arch + ";mapper=" + opt.mapper +
                       ";obj=" + opt.objective +
                       ";cal=" + opt.calibrationPath +
                       ";lat=" + std::to_string(opt.lat1) + "," +
                       std::to_string(opt.lat2) + "," +
                       std::to_string(opt.lats) +
                       ";si=" + (opt.searchInitial ? "1" : "0") +
                       ";nm=" + (opt.noMixing ? "1" : "0") +
                       ";ao=" + (opt.allOptimal ? "1" : "0") +
                       ";vf=" + (opt.verify ? "1" : "0") +
                       ";mn=" + std::to_string(opt.maxNodes) +
                       ";dl=" + std::to_string(opt.deadlineMs) +
                       ";mp=" + std::to_string(opt.maxPoolMb) +
                       ";pf=" + std::to_string(opt.portfolioSize) +
                       ";fb=" + opt.fallback +
                       ";ly=" + opt.layoutStrategy +
                       ";rl=" + (opt.restoreLayout ? "1" : "0") +
                       ";ed=" + (opt.enforceDirections ? "1" : "0") +
                       ";dot=" + (opt.emitDot ? "1" : "0") +
                       ";json=" + (opt.emitJson ? "1" : "0") +
                       ";st=" + (opt.structured ? "1" : "0") +
                       ";fp=" + opt.faultPlan;
    return text;
}

/** Render the `serve` block of the stats line: which tier answered
 *  and the warm cache's point-in-time counters. */
std::string
warmServeJson(const char *tier)
{
    const serve::CacheStats s = g_warmCache != nullptr
                                    ? g_warmCache->stats()
                                    : serve::CacheStats{};
    return std::string("{\"tier\":\"") + tier + "\",\"cache\":{" +
           "\"hits\":" + std::to_string(s.hits) +
           ",\"misses\":" + std::to_string(s.misses) +
           ",\"evictions\":" + std::to_string(s.evictions) +
           ",\"bytes\":" + std::to_string(s.bytes) +
           ",\"entries\":" + std::to_string(s.entries) + "}}";
}

} // namespace

/** Signals seen so far (sig_atomic_t: async-signal-safe to touch). */
static volatile std::sig_atomic_t g_signalsSeen = 0;

extern "C" void
toqmMapStopSignalHandler(int)
{
    // First signal: a single lock-free atomic store.  The armed
    // guards pick it up at their next probe and the mappers unwind,
    // returning their best incumbent.
    //
    // Second signal: the graceful unwind is taking too long (or is
    // wedged) and the operator really means stop NOW.  _Exit skips
    // every destructor and flush — nothing that could block — and
    // the distinct exit code 9 tells wrappers the stop was forced,
    // so partial artifacts from this run are suspect.
    if (++g_signalsSeen > 1)
        std::_Exit(9);
    toqm::search::requestCancellation();
}

/**
 * Writes the observability artifacts when main exits — by ANY path.
 * The trace of a failed or budget-exhausted run is exactly what one
 * wants to look at, so flushing must not depend on success.
 */
struct ObsArtifactFlusher
{
    const Options &opt;

    ~ObsArtifactFlusher()
    {
        const obs::Observer &o = obs::Observer::global();
        if (!opt.tracePath.empty() &&
            !o.writeTraceFile(opt.tracePath)) {
            std::fprintf(stderr,
                         "error: could not write trace file %s\n",
                         opt.tracePath.c_str());
        }
        if (opt.metricsJson) {
            const std::string snapshot = o.metrics().snapshotJson();
            if (opt.metricsPath.empty()) {
                std::fprintf(stderr, "%s\n", snapshot.c_str());
            } else {
                std::FILE *f =
                    std::fopen(opt.metricsPath.c_str(), "wb");
                if (f == nullptr ||
                    std::fwrite(snapshot.data(), 1, snapshot.size(),
                                f) != snapshot.size()) {
                    std::fprintf(
                        stderr,
                        "error: could not write metrics file %s\n",
                        opt.metricsPath.c_str());
                }
                if (f != nullptr)
                    std::fclose(f);
            }
        }
    }
};

namespace {

/** One batch job: which input to map and how to label its output. */
struct JobSpec
{
    std::string input;      // empty = stdin
    bool batchMode = false; // tag stats lines with the input path
    /** Pre-rendered recovery JSON from earlier failed attempts of
     *  this job (see runJobWithRecovery); lands on the stats line as
     *  the trailing `"fault":{...}` key. */
    std::string faultJson;
};

/**
 * Failure classification of one runJob attempt, filled for the retry
 * layer (see DESIGN.md §4.6 for the taxonomy).  The classes decide
 * retryability: Memory (retried with a halved pool cap), Transient
 * (IO hiccup, retried) and Verify (gate failure, retried) recover;
 * Permanent and Generic do not.
 */
struct FailureInfo
{
    enum class Class {
        None,      ///< the attempt did not classify its failure
        Memory,    ///< allocation failure (std::bad_alloc)
        Transient, ///< transient IO fault
        Permanent, ///< injected permanent fault
        Verify,    ///< verification gate rejected the result
        Generic,   ///< any other exception
    };

    Class cls = Class::None;
    std::string site; ///< fault site, when an injected fault was caught
};

const char *
failureClassName(FailureInfo::Class cls)
{
    switch (cls) {
      case FailureInfo::Class::Memory:
        return "memory";
      case FailureInfo::Class::Transient:
        return "transient";
      case FailureInfo::Class::Permanent:
        return "permanent";
      case FailureInfo::Class::Verify:
        return "verification";
      case FailureInfo::Class::Generic:
        return "generic";
      case FailureInfo::Class::None:
        break;
    }
    return "none";
}

/**
 * Map ONE input end to end: parse, map, verify, emit.  The single-
 * input path calls this with the real std::cout / stderr, so its
 * byte stream is identical to the pre-batch builds; batch jobs pass
 * buffered streams that main() replays in input-list order.
 * Returns the per-input exit code (see the table in usage()).
 * When @p failure is non-null a failing attempt records its failure
 * class there for the retry layer.
 */
int
runJob(const Options &opt, const JobSpec &job, std::ostream &out,
       std::FILE *err, FailureInfo *failure = nullptr)
{
    obs::Observer &observer = obs::Observer::global();

    search::GuardConfig guard_cfg;
    guard_cfg.deadlineMs = opt.deadlineMs;
    guard_cfg.maxPoolBytes = opt.maxPoolMb * 1024ull * 1024ull;
    guard_cfg.honorCancellation = true;

    try {
        // --- input ------------------------------------------------
        qasm::ImportResult program;
        if (job.input.empty()) {
            std::ostringstream buf;
            buf << std::cin.rdbuf();
            program = qasm::importString(buf.str());
        } else {
            program = qasm::importFile(job.input);
        }
        const ir::Circuit &logical = program.circuit;

        // Warm per-architecture state: named graphs (and their
        // all-pairs distance tables) construct once per process, so
        // a batch whose jobs share a device pays the Floyd-Warshall
        // cost exactly once.
        const auto device_ptr =
            serve::ArchCache::global().lookup(opt.arch);
        const arch::CouplingGraph &device = *device_ptr;
        const ir::LatencyModel latency(opt.lat1, opt.lat2, opt.lats);

        // --- warm result cache (tier "cache") ---------------------
        // An exact repeat of an earlier successful job — same circuit
        // bytes, same output-affecting flags — replays the stored
        // stdout bytes without mapping or re-verifying anything.
        serve::CanonicalKey exact_key{};
        if (g_warmCache != nullptr) {
            exact_key = serve::hashText(
                serve::exactCircuitText(logical) + "\n" +
                cacheConfigText(opt));
            const serve::ResultCache::Lookup hit =
                g_warmCache->find(exact_key, exact_key);
            if (hit.hit) {
                if (opt.statsJson) {
                    search::StatsLineContext hit_ctx;
                    hit_ctx.arch = opt.arch;
                    hit_ctx.lat1 = opt.lat1;
                    hit_ctx.lat2 = opt.lat2;
                    hit_ctx.latSwap = opt.lats;
                    if (job.batchMode)
                        hit_ctx.input = job.input;
                    const std::string serve_json =
                        warmServeJson("cache");
                    hit_ctx.serveJson = serve_json;
                    std::fputs(
                        search::statsJsonLine(
                            search::SearchStats{},
                            hit.entry->mapper,
                            search::SearchStatus::Solved,
                            static_cast<int>(hit.entry->cycles),
                            hit.entry->mapped.physical.numSwaps(),
                            hit_ctx)
                            .c_str(),
                        err);
                }
                out << hit.entry->output;
                return 0;
            }
        }

        // --- objective --------------------------------------------
        // Calibration data loads (exit 1 on malformed content via the
        // enclosing catch) or synthesizes deterministically when a
        // non-cycles objective runs without a file.  The cycles
        // objective builds no table at all: every mapper runs its
        // legacy scalar-cycle path, byte for byte.
        objective::ObjectiveKind obj_kind =
            objective::ObjectiveKind::Cycles;
        objective::objectiveKindFromString(opt.objective, obj_kind);
        std::optional<objective::CalibrationData> calibration;
        if (!opt.calibrationPath.empty())
            calibration =
                objective::CalibrationData::load(opt.calibrationPath);
        else if (obj_kind != objective::ObjectiveKind::Cycles)
            calibration =
                objective::CalibrationData::synthesize(device);
        const objective::Objective objective_fn =
            obj_kind == objective::ObjectiveKind::Fidelity
                ? objective::Objective::fidelity(*calibration)
            : obj_kind == objective::ObjectiveKind::Pareto
                ? objective::Objective::pareto(*calibration)
                : objective::Objective::cycles();
        const std::unique_ptr<search::CostTable> cost_table =
            objective_fn.makeTable(logical, device);

        // --- optional layout seed ----------------------------------
        std::optional<std::vector<int>> seed_layout;
        if (opt.layoutStrategy == "greedy")
            seed_layout = core::greedyLayout(logical, device);
        else if (opt.layoutStrategy == "annealed")
            seed_layout = core::annealedLayout(logical, device);

        // --- structured lookup (tier "structured") ----------------
        // Opt-in closed-form tier: a recognised QFT instance on a
        // matching line/grid device is answered from the Section 6.1
        // schedules, translated into this request's qubit labels and
        // re-verified — no search runs at all.
        serve::StructuredMatch structured;
        if (opt.structured) {
            const serve::CanonicalForm canonical_form =
                serve::canonicalizeCircuit(logical);
            structured = serve::structuredLookup(
                logical, canonical_form, device, latency,
                !opt.noMixing);
        }

        // --- map --------------------------------------------------
        search::StatsLineContext stats_ctx;
        stats_ctx.arch = opt.arch;
        stats_ctx.lat1 = opt.lat1;
        stats_ctx.lat2 = opt.lat2;
        stats_ctx.latSwap = opt.lats;
        if (job.batchMode)
            stats_ctx.input = job.input;
        stats_ctx.faultJson = job.faultJson;
        // The serve block is additive: it appears only when a serve
        // feature (--warm-cache / --structured) is active, so default
        // stats lines stay byte-identical.
        std::string serve_json;
        if (g_warmCache != nullptr || structured) {
            serve_json =
                warmServeJson(structured ? "structured" : "search");
            stats_ctx.serveJson = serve_json;
        }

        // Annotate the stats line with the run's objective whenever
        // one was asked for — a non-cycles objective OR an explicit
        // calibration (which makes even a cycles run's fidelity
        // meaningful).  Default runs leave every field unset and the
        // line byte-identical.
        const auto annotateObjective =
            [&](std::int64_t cost_key,
                const ir::Circuit &physical) {
                if (!calibration.has_value())
                    return;
                stats_ctx.objectiveName = objective_fn.name();
                if (cost_key >= 0) {
                    stats_ctx.hasCost = true;
                    stats_ctx.cost =
                        objective_fn.decodeCost(cost_key);
                }
                if (physical.size() > 0) {
                    stats_ctx.hasFidelity = true;
                    stats_ctx.fidelity =
                        objective::Objective::fidelity(*calibration)
                            .successProbability(physical, latency,
                                                logical.numQubits());
                }
            };

        ir::MappedCircuit mapped;
        // Exit code carried through the output path for degraded
        // deliveries (0 = the requested result, or an opted-in
        // fallback, was delivered).
        int pending_exit = 0;
        // Degraded results are always routed through the structural
        // verifier, --verify or not: a degraded answer is never an
        // unverified one.
        bool verify_degraded = false;
        if (structured) {
            mapped = structured.mapped;
            if (opt.statsJson) {
                std::fputs(
                    search::statsJsonLine(
                        search::SearchStats{}, structured.pattern,
                        search::SearchStatus::Solved,
                        static_cast<int>(structured.cycles),
                        mapped.physical.numSwaps(), stats_ctx)
                        .c_str(),
                    err);
            }
            if (opt.stats) {
                std::fprintf(err,
                             "structured: %s: %d cycles, %d swaps\n",
                             structured.pattern.c_str(),
                             static_cast<int>(structured.cycles),
                             mapped.physical.numSwaps());
            }
        } else if (opt.mapper == "optimal") {
            core::MapperConfig config;
            config.latency = latency;
            config.searchInitialMapping = opt.searchInitial;
            config.allowConcurrentSwapAndGate = !opt.noMixing;
            config.findAllOptimal = opt.allOptimal;
            config.maxExpandedNodes = opt.maxNodes;
            config.guard = guard_cfg;
            config.costTable = cost_table.get();
            core::OptimalMapper mapper(device, config);
            const auto res = mapper.map(logical, seed_layout);

            // Degradation chain: optimal -> incumbent -> heuristic.
            bool delivered = res.success;
            std::string delivered_by =
                res.fromIncumbent ? "incumbent" : "optimal";
            std::vector<DegradationStep> steps;
            heuristic::HeuristicResult fb;
            if (res.status != search::SearchStatus::Solved) {
                steps.push_back(
                    {"optimal", search::toString(res.status)});
                if (res.fromIncumbent) {
                    noteDegradation("degradation.incumbent");
                    steps.push_back({"incumbent", "delivered"});
                } else if (opt.fallback == "heuristic" &&
                           res.status !=
                               search::SearchStatus::Infeasible) {
                    noteDegradation("degradation.fallback");
                    heuristic::HeuristicConfig hcfg;
                    hcfg.latency = latency;
                    // The fallback is the chain's terminal, linear
                    // stage: it inherits the memory ceiling and the
                    // cancellation flag but not the (already spent)
                    // deadline.
                    hcfg.guard = guard_cfg;
                    hcfg.guard.deadlineMs = 0;
                    hcfg.costTable = cost_table.get();
                    fb = heuristic::HeuristicMapper(device, hcfg)
                             .map(logical, seed_layout);
                    steps.push_back(
                        {"heuristic", search::toString(fb.status)});
                    if (fb.success) {
                        delivered = true;
                        delivered_by = "heuristic";
                    }
                }
            }

            std::string degradation;
            if (!steps.empty()) {
                degradation = degradationJson(
                    "optimal", delivered ? delivered_by : "none",
                    steps);
            }
            if (opt.statsJson) {
                stats_ctx.nodeBudget = opt.maxNodes;
                stats_ctx.provenOptimal = true;
                stats_ctx.deadlineMs = opt.deadlineMs;
                stats_ctx.maxPoolBytes = guard_cfg.maxPoolBytes;
                stats_ctx.hasIncumbent = res.fromIncumbent;
                stats_ctx.degradationJson = degradation;
                if (res.success)
                    annotateObjective(res.costKey,
                                      res.mapped.physical);
                std::fputs(search::statsJsonLine(
                               res.stats, "optimal", res.status,
                               res.cycles,
                               res.mapped.physical.numSwaps(),
                               stats_ctx)
                               .c_str(),
                           err);
            }
            if (!delivered) {
                if (res.status ==
                    search::SearchStatus::BudgetExhausted) {
                    std::fprintf(
                        err,
                        "error: node budget exhausted before an "
                        "optimal solution was proven; raise "
                        "--max-nodes, set --fallback=heuristic, or "
                        "use --mapper heuristic\n");
                } else if (res.status ==
                           search::SearchStatus::Infeasible) {
                    std::fprintf(err,
                                 "error: instance is unsolvable on "
                                 "this device\n");
                } else {
                    std::fprintf(
                        err,
                        "error: search stopped (%s) before any "
                        "complete mapping was found; relax the "
                        "limit or set --fallback=heuristic\n",
                        search::toString(res.status));
                }
                return exitCodeFor(res.status);
            }
            if (res.status != search::SearchStatus::Solved) {
                // Degraded delivery: verified below; exit 0 only if
                // the caller opted into the fallback policy.
                verify_degraded = true;
                pending_exit = opt.fallback == "heuristic"
                                   ? 0
                                   : exitCodeFor(res.status);
            }
            mapped = delivered_by == "heuristic" ? fb.mapped
                                                 : res.mapped;
            if (opt.stats) {
                if (delivered_by == "heuristic") {
                    std::fprintf(
                        err,
                        "optimal: stopped (%s); heuristic fallback: "
                        "%d cycles, %d swaps\n",
                        search::toString(res.status), fb.cycles,
                        mapped.physical.numSwaps());
                } else {
                    std::fprintf(
                        err,
                        "optimal%s: %d cycles, %d swaps, %llu "
                        "nodes, %.3f s\n",
                        res.fromIncumbent ? " (incumbent)" : "",
                        res.cycles, mapped.physical.numSwaps(),
                        static_cast<unsigned long long>(
                            res.stats.expanded),
                        res.stats.seconds);
                }
            }
            if (opt.allOptimal && res.status ==
                                      search::SearchStatus::Solved) {
                std::fprintf(err, "distinct optimal solutions: "
                             "%zu (cap %zu)\n",
                             res.allOptimal.size(), size_t{64});
            }
        } else if (opt.mapper == "heuristic") {
            heuristic::HeuristicConfig config;
            config.latency = latency;
            config.guard = guard_cfg;
            config.costTable = cost_table.get();
            heuristic::HeuristicMapper mapper(device, config);
            const auto res = mapper.map(logical, seed_layout);
            std::string degradation;
            if (res.status != search::SearchStatus::Solved) {
                degradation = degradationJson(
                    "heuristic",
                    res.success ? "heuristic" : "none",
                    {{"heuristic", search::toString(res.status)}});
            }
            if (opt.statsJson) {
                stats_ctx.deadlineMs = opt.deadlineMs;
                stats_ctx.maxPoolBytes = guard_cfg.maxPoolBytes;
                stats_ctx.hasIncumbent =
                    res.success &&
                    res.status != search::SearchStatus::Solved;
                stats_ctx.degradationJson = degradation;
                if (res.success)
                    annotateObjective(res.costKey,
                                      res.mapped.physical);
                std::fputs(search::statsJsonLine(
                               res.stats, "heuristic", res.status,
                               res.cycles,
                               res.mapped.physical.numSwaps(),
                               stats_ctx)
                               .c_str(),
                           err);
            }
            if (!res.success) {
                std::fprintf(err,
                             "error: heuristic search failed (%s)\n",
                             search::toString(res.status));
                const int code = exitCodeFor(res.status);
                return code == 0 || code == 5 ? 1 : code;
            }
            if (res.status != search::SearchStatus::Solved) {
                verify_degraded = true;
                pending_exit = exitCodeFor(res.status);
            }
            mapped = res.mapped;
            if (opt.stats) {
                std::fprintf(err,
                             "heuristic: %d cycles, %d swaps, %.3f "
                             "s\n",
                             res.cycles, mapped.physical.numSwaps(),
                             res.stats.seconds);
            }
        } else if (opt.mapper == "sabre") {
            baselines::SabreMapper mapper(device);
            const auto res = mapper.map(logical);
            if (!res.success) {
                std::fprintf(err, "error: SABRE failed\n");
                return 1;
            }
            mapped = res.mapped;
            if (opt.statsJson) {
                // SABRE predates the search kernel: no node counts,
                // but the line shape stays uniform for consumers.
                // Its objective is always cycles (parseArgs rejects
                // anything else), so the annotation is fidelity-only
                // reporting under an explicit --calibration.
                const int sabre_cycles =
                    ir::scheduleAsap(mapped.physical, latency)
                        .makespan;
                annotateObjective(sabre_cycles, mapped.physical);
                std::fputs(
                    search::statsJsonLine(
                        search::SearchStats{}, "sabre",
                        search::SearchStatus::Solved, sabre_cycles,
                        res.swapCount, stats_ctx)
                        .c_str(),
                    err);
            }
            if (opt.stats) {
                std::fprintf(
                    err, "sabre: %d cycles, %d swaps\n",
                    ir::scheduleAsap(mapped.physical, latency)
                        .makespan,
                    res.swapCount);
            }
        } else if (opt.mapper == "zulehner") {
            baselines::ZulehnerConfig config;
            config.guard = guard_cfg;
            baselines::ZulehnerMapper mapper(device, config);
            const auto res = mapper.map(logical);
            if (!res.success) {
                std::fprintf(err, "error: Zulehner failed\n");
                return 1;
            }
            mapped = res.mapped;
            std::string degradation;
            if (res.status != search::SearchStatus::Solved) {
                // Guard stop mid-run: the remaining layers were
                // routed greedily (complete, just more swaps).
                noteDegradation("degradation.greedy");
                degradation = degradationJson(
                    "zulehner", "zulehner-greedy",
                    {{"zulehner", search::toString(res.status)},
                     {"greedy", "delivered"}});
                verify_degraded = true;
                pending_exit = exitCodeFor(res.status);
            }
            if (opt.statsJson) {
                stats_ctx.deadlineMs = opt.deadlineMs;
                stats_ctx.maxPoolBytes = guard_cfg.maxPoolBytes;
                stats_ctx.hasIncumbent =
                    res.status != search::SearchStatus::Solved;
                stats_ctx.degradationJson = degradation;
                const int zul_cycles =
                    ir::scheduleAsap(mapped.physical, latency)
                        .makespan;
                annotateObjective(zul_cycles, mapped.physical);
                std::fputs(
                    search::statsJsonLine(
                        res.stats, "zulehner", res.status,
                        zul_cycles, res.swapCount, stats_ctx)
                        .c_str(),
                    err);
            }
            if (opt.stats) {
                std::fprintf(
                    err, "zulehner: %d cycles, %d swaps\n",
                    ir::scheduleAsap(mapped.physical, latency)
                        .makespan,
                    res.swapCount);
            }
        } else if (opt.mapper == "portfolio") {
            core::MapperConfig base;
            base.latency = latency;
            base.searchInitialMapping = opt.searchInitial;
            base.allowConcurrentSwapAndGate = !opt.noMixing;
            base.maxExpandedNodes = opt.maxNodes;
            parallel::PortfolioConfig pcfg =
                parallel::defaultPortfolio(base, opt.portfolioSize);
            pcfg.guard = guard_cfg;
            if (obj_kind != objective::ObjectiveKind::Cycles) {
                // Homogeneous objective race: every entry minimises
                // the same table and shares the incumbent channel.
                // (A cycles run leaves the entries untouched so the
                // race and its JSON stay byte-identical.)
                for (parallel::PortfolioEntry &entry : pcfg.entries) {
                    entry.costTable = cost_table.get();
                    entry.objectiveId = objective_fn.objectiveId();
                    entry.objectiveName = objective_fn.name();
                }
            }
            parallel::PortfolioMapper mapper(device, pcfg);
            const auto res = mapper.map(logical, seed_layout);
            if (opt.statsJson) {
                stats_ctx.nodeBudget = opt.maxNodes;
                stats_ctx.provenOptimal = res.provenOptimal;
                stats_ctx.deadlineMs = opt.deadlineMs;
                stats_ctx.maxPoolBytes = guard_cfg.maxPoolBytes;
                stats_ctx.hasIncumbent = res.fromIncumbent;
                // Keep the rendered JSON alive across the call:
                // StatsLineContext holds string_views.
                const std::string portfolio_json =
                    res.portfolioJson();
                stats_ctx.portfolioJson = portfolio_json;
                if (res.success)
                    annotateObjective(res.costKey,
                                      res.mapped.physical);
                std::fputs(search::statsJsonLine(
                               res.stats, "portfolio", res.status,
                               res.cycles,
                               res.mapped.physical.numSwaps(),
                               stats_ctx)
                               .c_str(),
                           err);
            }
            if (!res.success) {
                std::fprintf(err,
                             "error: every portfolio entry stopped "
                             "(%s) before a complete mapping was "
                             "found\n",
                             search::toString(res.status));
                const int code = exitCodeFor(res.status);
                return code == 0 ? 1 : code;
            }
            if (res.status != search::SearchStatus::Solved) {
                // The race was stopped by a guard and the best
                // incumbent from any entry was taken.
                verify_degraded = true;
                pending_exit = exitCodeFor(res.status);
            }
            mapped = res.mapped;
            if (opt.stats) {
                const char *winner_name =
                    res.winner >= 0
                        ? res.outcomes[static_cast<std::size_t>(
                                           res.winner)]
                              .name.c_str()
                        : "none";
                std::fprintf(err,
                             "portfolio: winner %s%s: %d cycles, %d "
                             "swaps, %llu nodes, %.3f CPU-s\n",
                             winner_name,
                             res.provenOptimal ? " (proven optimal)"
                                               : "",
                             res.cycles, mapped.physical.numSwaps(),
                             static_cast<unsigned long long>(
                                 res.stats.expanded),
                             res.stats.seconds);
            }
        } else {
            std::fprintf(err, "unknown mapper: %s\n",
                         opt.mapper.c_str());
            return 2;
        }

        if (opt.stats && calibration.has_value()) {
            std::fprintf(
                err,
                "objective %s: success probability %.6g\n",
                objective_fn.name(),
                objective::Objective::fidelity(*calibration)
                    .successProbability(mapped.physical, latency,
                                        logical.numQubits()));
        }

        if (observer.metricsEnabled()) {
            observer.metrics().setGauge(
                "run.cycles",
                ir::scheduleAsap(mapped.physical, latency).makespan);
            observer.metrics().setGauge(
                "run.swaps", mapped.physical.numSwaps());
        }

        // --- post passes -------------------------------------------
        if (opt.restoreLayout) {
            const auto swaps = arch::routeBackToInitial(
                device, mapped.initialLayout, mapped.finalLayout);
            for (const auto &[a, b] : swaps)
                mapped.physical.addSwap(a, b);
            mapped.finalLayout = ir::propagateLayout(
                mapped.physical, mapped.initialLayout);
            if (opt.stats) {
                std::fprintf(err,
                             "restore-layout: +%zu swaps\n",
                             swaps.size());
            }
        }

        // --- verify -----------------------------------------------
        // Mandatory gate: EVERY result is structurally verified
        // before a single output byte is emitted — a wrong circuit
        // must never leave the process, whatever path produced it.
        // The gate is silent on success (keeping default stderr
        // byte-identical); the degraded and --verify paths below
        // keep their own reporting.
        if (verify_degraded && !opt.verify) {
            // A degraded answer is never an unverified one.
            const auto verdict =
                sim::verifyMapping(logical, mapped, device);
            if (!verdict.ok) {
                std::fprintf(err,
                             "VERIFICATION FAILED (degraded "
                             "result): %s\n",
                             verdict.message.c_str());
                if (failure != nullptr)
                    failure->cls = FailureInfo::Class::Verify;
                return 3;
            }
            std::fprintf(err, "structural verification "
                         "(degraded result): ok\n");
        } else if (!opt.verify) {
            const auto verdict =
                sim::verifyMapping(logical, mapped, device);
            if (!verdict.ok) {
                std::fprintf(err,
                             "VERIFICATION FAILED (gate): %s\n",
                             verdict.message.c_str());
                if (failure != nullptr)
                    failure->cls = FailureInfo::Class::Verify;
                return 3;
            }
        }
        if (opt.verify) {
            const auto verdict =
                sim::verifyMapping(logical, mapped, device);
            if (!verdict.ok) {
                std::fprintf(err,
                             "VERIFICATION FAILED: %s\n",
                             verdict.message.c_str());
                if (failure != nullptr)
                    failure->cls = FailureInfo::Class::Verify;
                return 3;
            }
            std::fprintf(err, "structural verification: ok\n");
            if (logical.numQubits() <= 12 &&
                device.numQubits() <= 20) {
                bool simulatable = true;
                for (const ir::Gate &g : logical.gates()) {
                    if (g.kind() == ir::GateKind::GT ||
                        g.kind() == ir::GateKind::Other ||
                        g.isMeasure()) {
                        simulatable = false;
                    }
                }
                if (simulatable) {
                    const bool equal =
                        sim::semanticallyEquivalent(logical, mapped);
                    std::fprintf(err,
                                 "semantic equivalence: %s\n",
                                 equal ? "ok" : "FAILED");
                    if (!equal) {
                        if (failure != nullptr)
                            failure->cls =
                                FailureInfo::Class::Verify;
                        return 3;
                    }
                }
            }
        }

        if (opt.enforceDirections) {
            if (opt.arch != "ibmqx2" && opt.arch != "qx2") {
                std::fprintf(err,
                             "--enforce-directions currently knows "
                             "only the ibmqx2 calibration\n");
                return 2;
            }
            const auto directed = ir::enforceCxDirections(
                mapped.physical, ir::ibmQX2Directions());
            mapped.physical = directed.circuit;
            if (opt.stats) {
                std::fprintf(err,
                             "enforce-directions: %d CX reversed\n",
                             directed.reversedCx);
            }
        }

        if (opt.timeline) {
            std::fputs(
                ir::renderTimeline(mapped.physical, latency).c_str(),
                err);
        }

        // --- output -----------------------------------------------
        // pending_exit is 0 for the requested result (or an opted-in
        // fallback) and the stop-reason code for degraded
        // deliveries; either way the mapping goes to stdout.
        std::string body;
        if (opt.emitDot)
            body = ir::toDot(device, mapped.initialLayout);
        else if (opt.emitJson)
            body = ir::mappingToJson(mapped, latency);
        else
            body = qasm::writeMappedCircuit(mapped);
        // Only full-quality search results enter the warm cache:
        // degraded deliveries would poison later exact repeats, and
        // structured answers are already cheaper than a lookup.
        if (g_warmCache != nullptr && pending_exit == 0 &&
            !verify_degraded && !structured) {
            serve::CacheEntry entry;
            entry.exactKey = exact_key;
            entry.output = body;
            entry.mapped = mapped;
            entry.mapper = opt.mapper;
            entry.cycles =
                ir::scheduleAsap(mapped.physical, latency).makespan;
            g_warmCache->insert(exact_key, std::move(entry));
        }
        out << body;
        return pending_exit;
    } catch (const fault::InjectedFault &e) {
        // An injected fault that reached the job boundary: contained
        // here, classified for the retry layer, never re-thrown into
        // the batch driver or a pool worker.
        std::fprintf(err, "error: %s\n", e.what());
        if (failure != nullptr) {
            failure->cls = e.transient()
                               ? FailureInfo::Class::Transient
                               : FailureInfo::Class::Permanent;
            failure->site = fault::siteName(e.site());
        }
        return 1;
    } catch (const std::bad_alloc &) {
        // Allocation failure shares the memory-exhausted exit code:
        // same failure class, same operator remedy (lower the load
        // or raise the ceiling), and the retry layer halves the pool
        // cap before trying again.
        std::fprintf(err, "error: out of memory\n");
        if (failure != nullptr)
            failure->cls = FailureInfo::Class::Memory;
        return 7;
    } catch (const std::exception &e) {
        std::fprintf(err, "error: %s\n", e.what());
        if (failure != nullptr)
            failure->cls = FailureInfo::Class::Generic;
        return 1;
    }
}

/** One recovery-layer attempt: how it failed and what was done. */
struct AttemptRecord
{
    int code = 0;
    FailureInfo::Class cls = FailureInfo::Class::None;
    std::string site;   // fault site when one was identified
    std::string action; // retry | retry-halved-pool | fallback-...
};

/** Render the `fault` block of the stats line: the contained-fault
 *  recovery history that led to the CURRENT (1-based) attempt. */
std::string
recoveryJson(const std::vector<AttemptRecord> &history)
{
    std::string out =
        "{\"attempts\":" + std::to_string(history.size() + 1) +
        ",\"history\":[";
    for (std::size_t i = 0; i < history.size(); ++i) {
        if (i != 0)
            out += ',';
        out += "{\"code\":" + std::to_string(history[i].code) +
               ",\"class\":\"" + failureClassName(history[i].cls) +
               "\"";
        if (!history[i].site.empty())
            out += ",\"site\":\"" + history[i].site + "\"";
        out += ",\"action\":\"" + history[i].action + "\"}";
    }
    out += "]}";
    return out;
}

/**
 * Self-healing wrapper around runJob: contain a failed attempt,
 * classify it (FailureInfo), and retry the retryable classes up to
 * `--retries` more times with exponential backoff —
 *
 *   memory        retried with the pool cap halved each attempt
 *   transient     retried as-is (IO hiccup)
 *   verification  retried as-is (gate rejected the result)
 *
 * — while permanent/generic failures and the guard-stop codes
 * (budget, infeasible, deadline, cancelled) return immediately:
 * retrying a deterministic failure or re-spending an expired
 * deadline only doubles the damage.  After the retries are spent, a
 * configured --fallback=heuristic runs once as the last resort.
 *
 * Each attempt's circuit is buffered and only the returned attempt's
 * bytes reach @p out, so a failed attempt can never leak a partial
 * circuit.  The attempt history is threaded into the stats line as
 * the `"fault":{...}` block.  With --retries 0 (the default) this is
 * a tail call into runJob — byte-identical behavior.
 */
int
runJobWithRecovery(const Options &opt, const JobSpec &job,
                   std::ostream &out, std::FILE *err)
{
    if (opt.retries == 0)
        return runJob(opt, job, out, err);

    Options attempt_opt = opt;
    std::vector<AttemptRecord> history;
    for (int attempt = 0;; ++attempt) {
        JobSpec attempt_job = job;
        if (!history.empty())
            attempt_job.faultJson = recoveryJson(history);
        std::ostringstream body;
        FailureInfo failure;
        const int code =
            runJob(attempt_opt, attempt_job, body, err, &failure);

        FailureInfo::Class cls = failure.cls;
        // Classify by exit code when the attempt did not: a 7 from
        // the guard path is the same memory class as a bad_alloc,
        // and every 3 is a verification rejection.
        if (cls == FailureInfo::Class::None && code == 7)
            cls = FailureInfo::Class::Memory;
        if (code == 3)
            cls = FailureInfo::Class::Verify;
        const bool retryable = cls == FailureInfo::Class::Memory ||
                               cls == FailureInfo::Class::Transient ||
                               cls == FailureInfo::Class::Verify;
        if (code == 0 || !retryable) {
            out << body.str();
            return code;
        }

        AttemptRecord rec;
        rec.code = code;
        rec.cls = cls;
        rec.site = failure.site;
        rec.action = "retry";
        if (cls == FailureInfo::Class::Memory &&
            attempt_opt.maxPoolMb > 1) {
            attempt_opt.maxPoolMb = attempt_opt.maxPoolMb / 2;
            rec.action = "retry-halved-pool";
        }
        if (attempt >= opt.retries) {
            // Retries spent.  Last resort: the --fallback mapper,
            // once; otherwise deliver the final attempt as-is.
            if (opt.fallback == "heuristic" &&
                attempt_opt.mapper != "heuristic") {
                attempt_opt.mapper = "heuristic";
                rec.action = "fallback-heuristic";
            } else {
                out << body.str();
                return code;
            }
        }
        history.push_back(std::move(rec));
        std::fprintf(err,
                     "recovery: attempt %d failed (%s, exit %d); "
                     "%s\n",
                     attempt + 1,
                     failureClassName(history.back().cls), code,
                     history.back().action.c_str());
        if (opt.retryBackoffMs > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(
                opt.retryBackoffMs << attempt));
        }
    }
}

/** The input paths to map: positional args plus the manifest
 *  (parsed by the hardened parallel::parseManifestFile — malformed
 *  content is a positioned `path:line:col:` error, not a silently
 *  shorter batch). */
std::vector<std::string>
collectInputs(const Options &opt)
{
    std::vector<std::string> inputs = opt.inputs;
    if (!opt.manifestPath.empty()) {
        const std::vector<std::string> manifest =
            parallel::parseManifestFile(opt.manifestPath);
        inputs.insert(inputs.end(), manifest.begin(),
                      manifest.end());
    }
    return inputs;
}

/**
 * Destination file names for --out-dir: each input's basename, with
 * later duplicates deterministically uniquified as `stem.N.ext`
 * (N = 2, 3, ... in input-list order) so batch inputs that share a
 * basename across directories — a/x.qasm and b/x.qasm — never
 * silently overwrite each other.
 */
std::vector<std::string>
outDirFileNames(const std::vector<std::string> &inputs)
{
    std::vector<std::string> names;
    names.reserve(inputs.size());
    std::set<std::string> used;
    for (const std::string &input : inputs) {
        const std::filesystem::path p(input);
        std::string name = p.filename().string();
        if (!used.insert(name).second) {
            const std::string stem = p.stem().string();
            const std::string ext = p.extension().string();
            for (int n = 2;; ++n) {
                name = stem + "." + std::to_string(n) + ext;
                if (used.insert(name).second)
                    break;
            }
        }
        names.push_back(std::move(name));
    }
    return names;
}

/** Write @p body to @p dest via tmp + rename, so a kill mid-write
 *  never leaves a torn destination file. */
bool
writeFileAtomic(const std::filesystem::path &dest,
                const std::string &body)
{
    const std::filesystem::path tmp(dest.string() + ".tmp");
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!(f << body))
            return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, dest, ec);
    return !ec;
}

/**
 * Map every input concurrently on a work-stealing pool, then emit
 * per-input output in INPUT-LIST order, never completion order:
 * stdout bodies go to --out-dir files (named by input basename,
 * collisions uniquified — see outDirFileNames) or are concatenated
 * with `// ====` separators, and stderr buffers are replayed
 * verbatim in the same order.  Returns the worst (numeric max)
 * per-input exit code.
 *
 * With --journal FILE the batch is additionally CRASH-SAFE: each
 * job's output file is published atomically (tmp + rename) the
 * moment the job finishes — not in the ordered replay — and its
 * completion is journaled durably (fsync).  Re-running the same
 * command resumes: every input whose journal record matches the
 * bytes on disk is skipped with its recorded exit code, so the
 * resumed batch converges to output byte-identical to an
 * uninterrupted run.
 */
int
runBatchMode(const Options &opt,
             const std::vector<std::string> &inputs)
{
    struct JobBuffers
    {
        std::ostringstream out;
        std::string errText;
    };

    const std::vector<std::string> dest_names =
        opt.outDir.empty() ? std::vector<std::string>()
                           : outDirFileNames(inputs);

    // Journal resume: identify the jobs a previous run of this batch
    // already completed.  Trust but verify — a record only skips its
    // job when the destination file's bytes still match (size +
    // FNV-1a), so a hand-edited or torn output is redone, never
    // silently trusted.
    parallel::Journal journal;
    std::vector<const parallel::JournalRecord *> done(inputs.size(),
                                                      nullptr);
    if (!opt.journalPath.empty()) {
        std::string error;
        if (!journal.open(opt.journalPath, error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return 1;
        }
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            const parallel::JournalRecord *rec =
                journal.find(dest_names[i]);
            if (rec == nullptr)
                continue;
            std::ifstream f(std::filesystem::path(opt.outDir) /
                                dest_names[i],
                            std::ios::binary);
            if (!f)
                continue;
            std::ostringstream buf;
            buf << f.rdbuf();
            const std::string body = buf.str();
            if (body.size() == rec->bytes &&
                parallel::fnv1aHash(body.data(), body.size()) ==
                    rec->hash) {
                done[i] = rec;
            }
        }
    }

    std::vector<JobBuffers> buffers(inputs.size());
    // Set by a journal-mode job once its output file is published;
    // the ordered replay below must not write it again.
    std::vector<char> published(inputs.size(), 0);
    std::vector<std::function<int()>> jobs;
    jobs.reserve(inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        jobs.push_back([&opt, &inputs, &buffers, &dest_names,
                        &journal, &done, &published, i]() -> int {
            if (done[i] != nullptr)
                return done[i]->code;
            // POSIX memstream: the fprintf-style call sites inside
            // runJob keep writing to a FILE* while the bytes land in
            // memory for ordered replay.
            char *data = nullptr;
            std::size_t size = 0;
            std::FILE *err = open_memstream(&data, &size);
            if (err == nullptr)
                return 1;
            int code = runJobWithRecovery(
                opt, JobSpec{inputs[i], /*batchMode=*/true},
                buffers[i].out, err);
            std::fclose(err);
            buffers[i].errText.assign(data, size);
            std::free(data);
            if (journal.isOpen()) {
                // Publish now (atomic rename), journal durably.
                const std::string body = buffers[i].out.str();
                const std::filesystem::path dest =
                    std::filesystem::path(opt.outDir) /
                    dest_names[i];
                if (writeFileAtomic(dest, body)) {
                    published[i] = 1;
                    parallel::JournalRecord rec;
                    rec.input = inputs[i];
                    rec.dest = dest_names[i];
                    rec.code = code;
                    rec.bytes = body.size();
                    rec.hash =
                        parallel::fnv1aHash(body.data(), body.size());
                    journal.append(rec);
                } else {
                    buffers[i].errText += "error: could not write " +
                                          dest.string() + "\n";
                    code = std::max(code, 1);
                }
            }
            return code;
        });
    }

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(opt.jobs, inputs.size()));
    parallel::ThreadPool pool(workers);
    std::vector<int> codes = parallel::runBatch(pool, jobs);

    for (std::size_t i = 0; i < inputs.size(); ++i) {
        std::fwrite(buffers[i].errText.data(), 1,
                    buffers[i].errText.size(), stderr);
        if (done[i] != nullptr) {
            std::fprintf(stderr,
                         "journal: %s already complete (exit %d), "
                         "skipped\n",
                         inputs[i].c_str(), done[i]->code);
            continue;
        }
        if (published[i])
            continue;
        const std::string body = buffers[i].out.str();
        if (opt.outDir.empty()) {
            std::printf("// ==== %s ====\n", inputs[i].c_str());
            std::fwrite(body.data(), 1, body.size(), stdout);
        } else {
            const std::filesystem::path dest =
                std::filesystem::path(opt.outDir) / dest_names[i];
            std::ofstream f(dest, std::ios::binary);
            if (!(f << body)) {
                std::fprintf(stderr,
                             "error: could not write %s\n",
                             dest.string().c_str());
                codes[i] = std::max(codes[i], 1);
            }
        }
    }
    return parallel::worstExitCode(codes);
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    if (opt.warmCacheMb > 0) {
        g_warmCache = std::make_unique<serve::ResultCache>(
            opt.warmCacheMb << 20);
    }

    // Fault injection: arm the process-global injector from
    // --fault-plan or the TOQM_FAULT environment variable.  In a
    // default build the hooks are compiled out, so a requested plan
    // could only silently do nothing — refuse it loudly instead.
    std::string fault_spec = opt.faultPlan;
    if (fault_spec.empty()) {
        if (const char *env = std::getenv("TOQM_FAULT"))
            fault_spec = env;
    }
    if (!fault_spec.empty()) {
#if TOQM_ENABLE_FAULT_INJECTION
        try {
            fault::Injector::global().arm(
                fault::FaultPlan::parse(fault_spec));
        } catch (const fault::FaultPlanError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 2;
        }
#else
        std::fprintf(stderr,
                     "error: fault injection is not compiled into "
                     "this build; configure with "
                     "-DTOQM_ENABLE_FAULT_INJECTION=ON\n");
        return 2;
#endif
    }

    // Cooperative cancellation: Ctrl-C / SIGTERM request a stop; the
    // searches unwind at their next guard probe and the best
    // incumbents (if any) are still delivered and verified.
    std::signal(SIGINT, toqmMapStopSignalHandler);
    std::signal(SIGTERM, toqmMapStopSignalHandler);

    obs::Observer &observer = obs::Observer::global();
    if (!opt.tracePath.empty())
        observer.enableTrace();
    if (opt.metricsJson)
        observer.enableMetrics();
    if (opt.progress)
        observer.enableProgress(opt.progressInterval, stderr);
    observer.setSampleInterval(opt.obsSample);
    const ObsArtifactFlusher obs_flusher{opt};

    std::vector<std::string> inputs;
    try {
        inputs = collectInputs(opt);
        if (!opt.outDir.empty())
            std::filesystem::create_directories(opt.outDir);
    } catch (const std::bad_alloc &) {
        std::fprintf(stderr, "error: out of memory\n");
        return 7;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    const bool batch =
        inputs.size() > 1 ||
        (!opt.outDir.empty() && !inputs.empty());
    if (!batch) {
        // Single input (or stdin): run on the caller's thread with
        // the REAL streams — byte-identical to a pre-batch build
        // (with --retries 0 the recovery wrapper is a tail call).
        JobSpec job;
        if (!inputs.empty())
            job.input = inputs.front();
        return runJobWithRecovery(opt, job, std::cout, stderr);
    }
    return runBatchMode(opt, inputs);
}
