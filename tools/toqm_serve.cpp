/**
 * @file
 * `toqm_serve` — the warm-state mapping daemon.
 *
 * A long-lived process answering JSON-lines mapping requests (see
 * serve/server.hpp for the protocol) from stdin or a unix socket.
 * Between requests it keeps hot state alive that a cold `toqm_map`
 * run pays for on every invocation: named coupling graphs and their
 * distance tables (ArchCache), recycled NodePool slab buffers
 * (SlabCache), the work-stealing ThreadPool, and a sharded
 * content-addressed result cache keyed on the canonical circuit
 * form — so a qubit-relabeled or gate-reordered-equivalent repeat of
 * an earlier request is answered without any search.
 *
 * Responses are byte-identical to what a cold `toqm_map` run with
 * the same flags prints: cache hits replay stored bytes, canonical
 * hits and structured-lookup answers are re-verified before use.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "obs/observer.hpp"
#include "search/node_pool.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace toqm;

struct Options
{
    std::string socketPath;
    std::string journalPath;
    std::string metricsPath;
    bool metricsJson = false;
    unsigned jobs = 1;
    std::size_t cacheMb = 64;
    std::size_t cacheShards = 8;
    std::size_t slabCacheMb = 0;
    bool structured = false;
};

void
usage(std::FILE *to)
{
    std::fputs(
        "usage: toqm_serve [options]\n"
        "\n"
        "Long-lived mapping daemon: reads one JSON request per line\n"
        "from stdin (or a unix socket), writes one JSON response per\n"
        "line, and keeps architecture tables, search arenas, worker\n"
        "threads and a content-addressed result cache warm across\n"
        "requests.  See the README for the request/response schema.\n"
        "\n"
        "options:\n"
        "  --socket PATH       serve a unix domain socket instead of\n"
        "                      stdin/stdout (one connection at a time)\n"
        "  --journal FILE      append one durable record per response\n"
        "                      (same format as toqm_map --journal);\n"
        "                      reopening after a crash resumes the file\n"
        "  --jobs N            stdin mode: slurp all requests and serve\n"
        "                      them on N warm worker threads, responses\n"
        "                      in input order (default 1: serve as they\n"
        "                      arrive)\n"
        "  --cache-mb N        result-cache byte budget in MiB\n"
        "                      (default 64; 0 disables the cache)\n"
        "  --cache-shards N    result-cache shard count (default 8)\n"
        "  --slab-cache-mb N   recycle up to N MiB of NodePool slab\n"
        "                      buffers across searches (default 0: off)\n"
        "  --structured        enable the structured-solution tier\n"
        "                      (recognised QFT instances answered from\n"
        "                      closed-form schedules, verified)\n"
        "  --metrics-json[=F]  emit the metrics registry on exit to F\n"
        "                      (stderr when omitted)\n"
        "  --help              this text\n"
        "\n"
        "lifecycle: drains on EOF, {\"cmd\":\"shutdown\"}, SIGTERM or\n"
        "SIGINT (in-flight requests complete; exit 0); a second signal\n"
        "forces an immediate abort with exit 9.\n",
        to);
}

bool
parseSize(const char *text, std::size_t &out)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        return false;
    out = static_cast<std::size_t>(v);
    return true;
}

} // namespace

/** Signals seen so far (sig_atomic_t: async-signal-safe to touch). */
static volatile std::sig_atomic_t g_signalsSeen = 0;

extern "C" void
toqmServeStopSignalHandler(int)
{
    // First signal: request a graceful drain — the serve loop
    // finishes in-flight work, writes the final stats summary and
    // exits 0.  Second signal: the operator means NOW; _Exit skips
    // every destructor with the distinct forced-abort code.
    if (++g_signalsSeen > 1)
        std::_Exit(9);
    toqm::serve::requestStop();
}

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto needsValue = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--socket") {
            opt.socketPath = needsValue("--socket");
        } else if (arg == "--journal") {
            opt.journalPath = needsValue("--journal");
        } else if (arg == "--jobs") {
            std::size_t n = 0;
            if (!parseSize(needsValue("--jobs"), n) || n == 0) {
                std::fprintf(stderr, "error: bad --jobs value\n");
                return 2;
            }
            opt.jobs = static_cast<unsigned>(n);
        } else if (arg == "--cache-mb") {
            if (!parseSize(needsValue("--cache-mb"), opt.cacheMb)) {
                std::fprintf(stderr, "error: bad --cache-mb value\n");
                return 2;
            }
        } else if (arg == "--cache-shards") {
            if (!parseSize(needsValue("--cache-shards"),
                           opt.cacheShards) ||
                opt.cacheShards == 0) {
                std::fprintf(stderr,
                             "error: bad --cache-shards value\n");
                return 2;
            }
        } else if (arg == "--slab-cache-mb") {
            if (!parseSize(needsValue("--slab-cache-mb"),
                           opt.slabCacheMb)) {
                std::fprintf(stderr,
                             "error: bad --slab-cache-mb value\n");
                return 2;
            }
        } else if (arg == "--structured") {
            opt.structured = true;
        } else if (arg == "--metrics-json") {
            opt.metricsJson = true;
        } else if (arg.rfind("--metrics-json=", 0) == 0) {
            opt.metricsJson = true;
            opt.metricsPath = arg.substr(std::strlen("--metrics-json="));
        } else {
            std::fprintf(stderr, "error: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (opt.metricsJson)
        obs::Observer::global().enableMetrics();
    if (opt.slabCacheMb > 0)
        search::SlabCache::global().arm(opt.slabCacheMb << 20);

    serve::ServiceConfig serviceConfig;
    serviceConfig.cacheBytes = opt.cacheMb << 20;
    serviceConfig.cacheShards = opt.cacheShards;
    serviceConfig.structuredTier = opt.structured;
    serviceConfig.workers = opt.jobs;
    serve::MapService service(serviceConfig);

    serve::ServerConfig serverConfig;
    serverConfig.socketPath = opt.socketPath;
    serverConfig.journalPath = opt.journalPath;
    serverConfig.jobs = opt.jobs;
    serve::Server server(serverConfig, service);

    // No SA_RESTART: a blocked stdin read or poll must fail with
    // EINTR so the serve loop notices the stop flag and drains.
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = toqmServeStopSignalHandler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = 0;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);

    const int code = opt.socketPath.empty()
                         ? server.runStdio(std::cin, std::cout,
                                           std::cerr)
                         : server.runSocket(std::cerr);

    if (opt.metricsJson) {
        service.publishMetrics();
        const std::string snapshot =
            obs::Observer::global().metrics().snapshotJson();
        if (opt.metricsPath.empty()) {
            std::fprintf(stderr, "%s\n", snapshot.c_str());
        } else {
            std::FILE *f = std::fopen(opt.metricsPath.c_str(), "wb");
            if (f == nullptr ||
                std::fwrite(snapshot.data(), 1, snapshot.size(), f) !=
                    snapshot.size()) {
                std::fprintf(stderr,
                             "error: could not write metrics file "
                             "%s\n",
                             opt.metricsPath.c_str());
            }
            if (f != nullptr)
                std::fclose(f);
        }
    }
    return code;
}
