# Empty dependencies file for toqm_baselines.
# This may be replaced when dependencies are built.
