file(REMOVE_RECURSE
  "CMakeFiles/toqm_baselines.dir/exhaustive.cpp.o"
  "CMakeFiles/toqm_baselines.dir/exhaustive.cpp.o.d"
  "CMakeFiles/toqm_baselines.dir/sabre.cpp.o"
  "CMakeFiles/toqm_baselines.dir/sabre.cpp.o.d"
  "CMakeFiles/toqm_baselines.dir/zulehner.cpp.o"
  "CMakeFiles/toqm_baselines.dir/zulehner.cpp.o.d"
  "libtoqm_baselines.a"
  "libtoqm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toqm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
