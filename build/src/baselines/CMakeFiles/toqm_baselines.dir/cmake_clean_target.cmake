file(REMOVE_RECURSE
  "libtoqm_baselines.a"
)
