# Empty dependencies file for toqm_qftopt.
# This may be replaced when dependencies are built.
