file(REMOVE_RECURSE
  "CMakeFiles/toqm_qftopt.dir/qft_patterns.cpp.o"
  "CMakeFiles/toqm_qftopt.dir/qft_patterns.cpp.o.d"
  "libtoqm_qftopt.a"
  "libtoqm_qftopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toqm_qftopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
