file(REMOVE_RECURSE
  "libtoqm_qftopt.a"
)
