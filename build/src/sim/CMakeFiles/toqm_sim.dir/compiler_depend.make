# Empty compiler generated dependencies file for toqm_sim.
# This may be replaced when dependencies are built.
