file(REMOVE_RECURSE
  "CMakeFiles/toqm_sim.dir/noise.cpp.o"
  "CMakeFiles/toqm_sim.dir/noise.cpp.o.d"
  "CMakeFiles/toqm_sim.dir/stabilizer.cpp.o"
  "CMakeFiles/toqm_sim.dir/stabilizer.cpp.o.d"
  "CMakeFiles/toqm_sim.dir/statevector.cpp.o"
  "CMakeFiles/toqm_sim.dir/statevector.cpp.o.d"
  "CMakeFiles/toqm_sim.dir/verifier.cpp.o"
  "CMakeFiles/toqm_sim.dir/verifier.cpp.o.d"
  "libtoqm_sim.a"
  "libtoqm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toqm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
