file(REMOVE_RECURSE
  "libtoqm_sim.a"
)
