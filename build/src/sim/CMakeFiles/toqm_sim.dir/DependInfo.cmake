
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/noise.cpp" "src/sim/CMakeFiles/toqm_sim.dir/noise.cpp.o" "gcc" "src/sim/CMakeFiles/toqm_sim.dir/noise.cpp.o.d"
  "/root/repo/src/sim/stabilizer.cpp" "src/sim/CMakeFiles/toqm_sim.dir/stabilizer.cpp.o" "gcc" "src/sim/CMakeFiles/toqm_sim.dir/stabilizer.cpp.o.d"
  "/root/repo/src/sim/statevector.cpp" "src/sim/CMakeFiles/toqm_sim.dir/statevector.cpp.o" "gcc" "src/sim/CMakeFiles/toqm_sim.dir/statevector.cpp.o.d"
  "/root/repo/src/sim/verifier.cpp" "src/sim/CMakeFiles/toqm_sim.dir/verifier.cpp.o" "gcc" "src/sim/CMakeFiles/toqm_sim.dir/verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/toqm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/toqm_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
