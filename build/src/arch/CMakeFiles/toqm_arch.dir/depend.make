# Empty dependencies file for toqm_arch.
# This may be replaced when dependencies are built.
