file(REMOVE_RECURSE
  "libtoqm_arch.a"
)
