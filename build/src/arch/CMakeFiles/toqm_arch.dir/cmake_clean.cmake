file(REMOVE_RECURSE
  "CMakeFiles/toqm_arch.dir/architectures.cpp.o"
  "CMakeFiles/toqm_arch.dir/architectures.cpp.o.d"
  "CMakeFiles/toqm_arch.dir/coupling_graph.cpp.o"
  "CMakeFiles/toqm_arch.dir/coupling_graph.cpp.o.d"
  "CMakeFiles/toqm_arch.dir/token_swapping.cpp.o"
  "CMakeFiles/toqm_arch.dir/token_swapping.cpp.o.d"
  "libtoqm_arch.a"
  "libtoqm_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toqm_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
