
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/architectures.cpp" "src/arch/CMakeFiles/toqm_arch.dir/architectures.cpp.o" "gcc" "src/arch/CMakeFiles/toqm_arch.dir/architectures.cpp.o.d"
  "/root/repo/src/arch/coupling_graph.cpp" "src/arch/CMakeFiles/toqm_arch.dir/coupling_graph.cpp.o" "gcc" "src/arch/CMakeFiles/toqm_arch.dir/coupling_graph.cpp.o.d"
  "/root/repo/src/arch/token_swapping.cpp" "src/arch/CMakeFiles/toqm_arch.dir/token_swapping.cpp.o" "gcc" "src/arch/CMakeFiles/toqm_arch.dir/token_swapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
