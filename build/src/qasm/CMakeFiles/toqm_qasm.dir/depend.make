# Empty dependencies file for toqm_qasm.
# This may be replaced when dependencies are built.
