file(REMOVE_RECURSE
  "CMakeFiles/toqm_qasm.dir/ast.cpp.o"
  "CMakeFiles/toqm_qasm.dir/ast.cpp.o.d"
  "CMakeFiles/toqm_qasm.dir/importer.cpp.o"
  "CMakeFiles/toqm_qasm.dir/importer.cpp.o.d"
  "CMakeFiles/toqm_qasm.dir/lexer.cpp.o"
  "CMakeFiles/toqm_qasm.dir/lexer.cpp.o.d"
  "CMakeFiles/toqm_qasm.dir/parser.cpp.o"
  "CMakeFiles/toqm_qasm.dir/parser.cpp.o.d"
  "CMakeFiles/toqm_qasm.dir/qelib.cpp.o"
  "CMakeFiles/toqm_qasm.dir/qelib.cpp.o.d"
  "CMakeFiles/toqm_qasm.dir/writer.cpp.o"
  "CMakeFiles/toqm_qasm.dir/writer.cpp.o.d"
  "libtoqm_qasm.a"
  "libtoqm_qasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toqm_qasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
