file(REMOVE_RECURSE
  "libtoqm_qasm.a"
)
