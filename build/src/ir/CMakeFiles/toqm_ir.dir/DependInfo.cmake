
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analysis.cpp" "src/ir/CMakeFiles/toqm_ir.dir/analysis.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/analysis.cpp.o.d"
  "/root/repo/src/ir/circuit.cpp" "src/ir/CMakeFiles/toqm_ir.dir/circuit.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/circuit.cpp.o.d"
  "/root/repo/src/ir/dag.cpp" "src/ir/CMakeFiles/toqm_ir.dir/dag.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/dag.cpp.o.d"
  "/root/repo/src/ir/direction.cpp" "src/ir/CMakeFiles/toqm_ir.dir/direction.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/direction.cpp.o.d"
  "/root/repo/src/ir/export.cpp" "src/ir/CMakeFiles/toqm_ir.dir/export.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/export.cpp.o.d"
  "/root/repo/src/ir/gate.cpp" "src/ir/CMakeFiles/toqm_ir.dir/gate.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/gate.cpp.o.d"
  "/root/repo/src/ir/generators.cpp" "src/ir/CMakeFiles/toqm_ir.dir/generators.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/generators.cpp.o.d"
  "/root/repo/src/ir/latency.cpp" "src/ir/CMakeFiles/toqm_ir.dir/latency.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/latency.cpp.o.d"
  "/root/repo/src/ir/mapped_circuit.cpp" "src/ir/CMakeFiles/toqm_ir.dir/mapped_circuit.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/mapped_circuit.cpp.o.d"
  "/root/repo/src/ir/queko.cpp" "src/ir/CMakeFiles/toqm_ir.dir/queko.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/queko.cpp.o.d"
  "/root/repo/src/ir/schedule.cpp" "src/ir/CMakeFiles/toqm_ir.dir/schedule.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/schedule.cpp.o.d"
  "/root/repo/src/ir/transforms.cpp" "src/ir/CMakeFiles/toqm_ir.dir/transforms.cpp.o" "gcc" "src/ir/CMakeFiles/toqm_ir.dir/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
