# Empty compiler generated dependencies file for toqm_ir.
# This may be replaced when dependencies are built.
