file(REMOVE_RECURSE
  "libtoqm_ir.a"
)
