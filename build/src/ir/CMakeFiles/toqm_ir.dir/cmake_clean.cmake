file(REMOVE_RECURSE
  "CMakeFiles/toqm_ir.dir/analysis.cpp.o"
  "CMakeFiles/toqm_ir.dir/analysis.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/circuit.cpp.o"
  "CMakeFiles/toqm_ir.dir/circuit.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/dag.cpp.o"
  "CMakeFiles/toqm_ir.dir/dag.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/direction.cpp.o"
  "CMakeFiles/toqm_ir.dir/direction.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/export.cpp.o"
  "CMakeFiles/toqm_ir.dir/export.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/gate.cpp.o"
  "CMakeFiles/toqm_ir.dir/gate.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/generators.cpp.o"
  "CMakeFiles/toqm_ir.dir/generators.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/latency.cpp.o"
  "CMakeFiles/toqm_ir.dir/latency.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/mapped_circuit.cpp.o"
  "CMakeFiles/toqm_ir.dir/mapped_circuit.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/queko.cpp.o"
  "CMakeFiles/toqm_ir.dir/queko.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/schedule.cpp.o"
  "CMakeFiles/toqm_ir.dir/schedule.cpp.o.d"
  "CMakeFiles/toqm_ir.dir/transforms.cpp.o"
  "CMakeFiles/toqm_ir.dir/transforms.cpp.o.d"
  "libtoqm_ir.a"
  "libtoqm_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toqm_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
