# Empty compiler generated dependencies file for toqm_core.
# This may be replaced when dependencies are built.
