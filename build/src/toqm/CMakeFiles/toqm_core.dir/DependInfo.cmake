
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toqm/cost_estimator.cpp" "src/toqm/CMakeFiles/toqm_core.dir/cost_estimator.cpp.o" "gcc" "src/toqm/CMakeFiles/toqm_core.dir/cost_estimator.cpp.o.d"
  "/root/repo/src/toqm/expander.cpp" "src/toqm/CMakeFiles/toqm_core.dir/expander.cpp.o" "gcc" "src/toqm/CMakeFiles/toqm_core.dir/expander.cpp.o.d"
  "/root/repo/src/toqm/filter.cpp" "src/toqm/CMakeFiles/toqm_core.dir/filter.cpp.o" "gcc" "src/toqm/CMakeFiles/toqm_core.dir/filter.cpp.o.d"
  "/root/repo/src/toqm/ida_star.cpp" "src/toqm/CMakeFiles/toqm_core.dir/ida_star.cpp.o" "gcc" "src/toqm/CMakeFiles/toqm_core.dir/ida_star.cpp.o.d"
  "/root/repo/src/toqm/initial_layout.cpp" "src/toqm/CMakeFiles/toqm_core.dir/initial_layout.cpp.o" "gcc" "src/toqm/CMakeFiles/toqm_core.dir/initial_layout.cpp.o.d"
  "/root/repo/src/toqm/mapper.cpp" "src/toqm/CMakeFiles/toqm_core.dir/mapper.cpp.o" "gcc" "src/toqm/CMakeFiles/toqm_core.dir/mapper.cpp.o.d"
  "/root/repo/src/toqm/search_context.cpp" "src/toqm/CMakeFiles/toqm_core.dir/search_context.cpp.o" "gcc" "src/toqm/CMakeFiles/toqm_core.dir/search_context.cpp.o.d"
  "/root/repo/src/toqm/search_node.cpp" "src/toqm/CMakeFiles/toqm_core.dir/search_node.cpp.o" "gcc" "src/toqm/CMakeFiles/toqm_core.dir/search_node.cpp.o.d"
  "/root/repo/src/toqm/static_mapping.cpp" "src/toqm/CMakeFiles/toqm_core.dir/static_mapping.cpp.o" "gcc" "src/toqm/CMakeFiles/toqm_core.dir/static_mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/toqm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/toqm_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
