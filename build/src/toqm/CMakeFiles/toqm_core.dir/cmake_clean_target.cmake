file(REMOVE_RECURSE
  "libtoqm_core.a"
)
