file(REMOVE_RECURSE
  "CMakeFiles/toqm_core.dir/cost_estimator.cpp.o"
  "CMakeFiles/toqm_core.dir/cost_estimator.cpp.o.d"
  "CMakeFiles/toqm_core.dir/expander.cpp.o"
  "CMakeFiles/toqm_core.dir/expander.cpp.o.d"
  "CMakeFiles/toqm_core.dir/filter.cpp.o"
  "CMakeFiles/toqm_core.dir/filter.cpp.o.d"
  "CMakeFiles/toqm_core.dir/ida_star.cpp.o"
  "CMakeFiles/toqm_core.dir/ida_star.cpp.o.d"
  "CMakeFiles/toqm_core.dir/initial_layout.cpp.o"
  "CMakeFiles/toqm_core.dir/initial_layout.cpp.o.d"
  "CMakeFiles/toqm_core.dir/mapper.cpp.o"
  "CMakeFiles/toqm_core.dir/mapper.cpp.o.d"
  "CMakeFiles/toqm_core.dir/search_context.cpp.o"
  "CMakeFiles/toqm_core.dir/search_context.cpp.o.d"
  "CMakeFiles/toqm_core.dir/search_node.cpp.o"
  "CMakeFiles/toqm_core.dir/search_node.cpp.o.d"
  "CMakeFiles/toqm_core.dir/static_mapping.cpp.o"
  "CMakeFiles/toqm_core.dir/static_mapping.cpp.o.d"
  "libtoqm_core.a"
  "libtoqm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toqm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
