# Empty dependencies file for toqm_heuristic.
# This may be replaced when dependencies are built.
