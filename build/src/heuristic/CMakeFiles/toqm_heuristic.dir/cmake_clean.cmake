file(REMOVE_RECURSE
  "CMakeFiles/toqm_heuristic.dir/heuristic_mapper.cpp.o"
  "CMakeFiles/toqm_heuristic.dir/heuristic_mapper.cpp.o.d"
  "libtoqm_heuristic.a"
  "libtoqm_heuristic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toqm_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
