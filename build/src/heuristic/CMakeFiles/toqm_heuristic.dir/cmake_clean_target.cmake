file(REMOVE_RECURSE
  "libtoqm_heuristic.a"
)
