
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/heuristic/heuristic_mapper.cpp" "src/heuristic/CMakeFiles/toqm_heuristic.dir/heuristic_mapper.cpp.o" "gcc" "src/heuristic/CMakeFiles/toqm_heuristic.dir/heuristic_mapper.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/toqm/CMakeFiles/toqm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/toqm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/toqm_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
