file(REMOVE_RECURSE
  "../bench/ablation_filters"
  "../bench/ablation_filters.pdb"
  "CMakeFiles/ablation_filters.dir/ablation_filters.cpp.o"
  "CMakeFiles/ablation_filters.dir/ablation_filters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
