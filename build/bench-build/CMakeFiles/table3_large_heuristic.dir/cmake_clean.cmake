file(REMOVE_RECURSE
  "../bench/table3_large_heuristic"
  "../bench/table3_large_heuristic.pdb"
  "CMakeFiles/table3_large_heuristic.dir/table3_large_heuristic.cpp.o"
  "CMakeFiles/table3_large_heuristic.dir/table3_large_heuristic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_large_heuristic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
