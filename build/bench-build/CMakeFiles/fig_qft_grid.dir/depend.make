# Empty dependencies file for fig_qft_grid.
# This may be replaced when dependencies are built.
