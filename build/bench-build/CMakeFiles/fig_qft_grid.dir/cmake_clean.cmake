file(REMOVE_RECURSE
  "../bench/fig_qft_grid"
  "../bench/fig_qft_grid.pdb"
  "CMakeFiles/fig_qft_grid.dir/fig_qft_grid.cpp.o"
  "CMakeFiles/fig_qft_grid.dir/fig_qft_grid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_qft_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
