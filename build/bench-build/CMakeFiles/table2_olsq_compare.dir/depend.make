# Empty dependencies file for table2_olsq_compare.
# This may be replaced when dependencies are built.
