file(REMOVE_RECURSE
  "../bench/table2_olsq_compare"
  "../bench/table2_olsq_compare.pdb"
  "CMakeFiles/table2_olsq_compare.dir/table2_olsq_compare.cpp.o"
  "CMakeFiles/table2_olsq_compare.dir/table2_olsq_compare.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_olsq_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
