file(REMOVE_RECURSE
  "../bench/table1_wille_qx2"
  "../bench/table1_wille_qx2.pdb"
  "CMakeFiles/table1_wille_qx2.dir/table1_wille_qx2.cpp.o"
  "CMakeFiles/table1_wille_qx2.dir/table1_wille_qx2.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_wille_qx2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
