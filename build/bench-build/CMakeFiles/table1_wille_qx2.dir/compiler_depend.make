# Empty compiler generated dependencies file for table1_wille_qx2.
# This may be replaced when dependencies are built.
