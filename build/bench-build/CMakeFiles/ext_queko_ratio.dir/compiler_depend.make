# Empty compiler generated dependencies file for ext_queko_ratio.
# This may be replaced when dependencies are built.
