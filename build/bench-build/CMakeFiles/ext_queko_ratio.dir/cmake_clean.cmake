file(REMOVE_RECURSE
  "../bench/ext_queko_ratio"
  "../bench/ext_queko_ratio.pdb"
  "CMakeFiles/ext_queko_ratio.dir/ext_queko_ratio.cpp.o"
  "CMakeFiles/ext_queko_ratio.dir/ext_queko_ratio.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_queko_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
