file(REMOVE_RECURSE
  "../bench/ablation_swap_latency"
  "../bench/ablation_swap_latency.pdb"
  "CMakeFiles/ablation_swap_latency.dir/ablation_swap_latency.cpp.o"
  "CMakeFiles/ablation_swap_latency.dir/ablation_swap_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_swap_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
