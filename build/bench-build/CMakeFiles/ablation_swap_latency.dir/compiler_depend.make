# Empty compiler generated dependencies file for ablation_swap_latency.
# This may be replaced when dependencies are built.
