# Empty compiler generated dependencies file for fig_qft_lnn.
# This may be replaced when dependencies are built.
