file(REMOVE_RECURSE
  "../bench/fig_qft_lnn"
  "../bench/fig_qft_lnn.pdb"
  "CMakeFiles/fig_qft_lnn.dir/fig_qft_lnn.cpp.o"
  "CMakeFiles/fig_qft_lnn.dir/fig_qft_lnn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_qft_lnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
