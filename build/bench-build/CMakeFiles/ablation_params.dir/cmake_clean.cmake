file(REMOVE_RECURSE
  "../bench/ablation_params"
  "../bench/ablation_params.pdb"
  "CMakeFiles/ablation_params.dir/ablation_params.cpp.o"
  "CMakeFiles/ablation_params.dir/ablation_params.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
