file(REMOVE_RECURSE
  "../bench/fig13_generalized"
  "../bench/fig13_generalized.pdb"
  "CMakeFiles/fig13_generalized.dir/fig13_generalized.cpp.o"
  "CMakeFiles/fig13_generalized.dir/fig13_generalized.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_generalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
