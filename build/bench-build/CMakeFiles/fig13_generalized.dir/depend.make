# Empty dependencies file for fig13_generalized.
# This may be replaced when dependencies are built.
