file(REMOVE_RECURSE
  "../bench/ablation_heuristic_cost"
  "../bench/ablation_heuristic_cost.pdb"
  "CMakeFiles/ablation_heuristic_cost.dir/ablation_heuristic_cost.cpp.o"
  "CMakeFiles/ablation_heuristic_cost.dir/ablation_heuristic_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_heuristic_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
