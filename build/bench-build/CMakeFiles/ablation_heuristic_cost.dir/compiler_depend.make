# Empty compiler generated dependencies file for ablation_heuristic_cost.
# This may be replaced when dependencies are built.
