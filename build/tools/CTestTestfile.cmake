# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_help "/root/repo/build/tools/toqm_map" "--help")
set_tests_properties(cli_help PROPERTIES  PASS_REGULAR_EXPRESSION "usage:" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map_bell "/root/repo/build/tools/toqm_map" "--arch" "ibmqx2" "--mapper" "optimal" "--search-initial" "--verify" "/root/repo/benchmarks/qasm/bell.qasm")
set_tests_properties(cli_map_bell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_map_toffoli_heuristic "/root/repo/build/tools/toqm_map" "--arch" "tokyo" "--mapper" "heuristic" "--verify" "/root/repo/benchmarks/qasm/toffoli_chain.qasm")
set_tests_properties(cli_map_toffoli_heuristic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
