file(REMOVE_RECURSE
  "CMakeFiles/toqm_map.dir/toqm_map.cpp.o"
  "CMakeFiles/toqm_map.dir/toqm_map.cpp.o.d"
  "toqm_map"
  "toqm_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/toqm_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
