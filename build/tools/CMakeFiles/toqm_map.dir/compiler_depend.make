# Empty compiler generated dependencies file for toqm_map.
# This may be replaced when dependencies are built.
