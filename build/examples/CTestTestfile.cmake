# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_qft_discovery "/root/repo/build/examples/qft_discovery" "6")
set_tests_properties(example_qft_discovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_large_circuit_routing "/root/repo/build/examples/large_circuit_routing" "800")
set_tests_properties(example_large_circuit_routing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fidelity_analysis "/root/repo/build/examples/fidelity_analysis")
set_tests_properties(example_fidelity_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_all_optimal_solutions "/root/repo/build/examples/all_optimal_solutions")
set_tests_properties(example_all_optimal_solutions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_iterative_workload "/root/repo/build/examples/iterative_workload" "3")
set_tests_properties(example_iterative_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
