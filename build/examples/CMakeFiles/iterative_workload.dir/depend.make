# Empty dependencies file for iterative_workload.
# This may be replaced when dependencies are built.
