file(REMOVE_RECURSE
  "CMakeFiles/iterative_workload.dir/iterative_workload.cpp.o"
  "CMakeFiles/iterative_workload.dir/iterative_workload.cpp.o.d"
  "iterative_workload"
  "iterative_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterative_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
