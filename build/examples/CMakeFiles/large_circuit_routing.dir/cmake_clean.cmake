file(REMOVE_RECURSE
  "CMakeFiles/large_circuit_routing.dir/large_circuit_routing.cpp.o"
  "CMakeFiles/large_circuit_routing.dir/large_circuit_routing.cpp.o.d"
  "large_circuit_routing"
  "large_circuit_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_circuit_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
