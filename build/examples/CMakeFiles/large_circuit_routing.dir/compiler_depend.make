# Empty compiler generated dependencies file for large_circuit_routing.
# This may be replaced when dependencies are built.
