# Empty dependencies file for all_optimal_solutions.
# This may be replaced when dependencies are built.
