file(REMOVE_RECURSE
  "CMakeFiles/all_optimal_solutions.dir/all_optimal_solutions.cpp.o"
  "CMakeFiles/all_optimal_solutions.dir/all_optimal_solutions.cpp.o.d"
  "all_optimal_solutions"
  "all_optimal_solutions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/all_optimal_solutions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
