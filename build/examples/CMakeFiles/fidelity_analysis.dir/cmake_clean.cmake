file(REMOVE_RECURSE
  "CMakeFiles/fidelity_analysis.dir/fidelity_analysis.cpp.o"
  "CMakeFiles/fidelity_analysis.dir/fidelity_analysis.cpp.o.d"
  "fidelity_analysis"
  "fidelity_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidelity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
