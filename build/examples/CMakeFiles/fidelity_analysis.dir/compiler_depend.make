# Empty compiler generated dependencies file for fidelity_analysis.
# This may be replaced when dependencies are built.
