# Empty dependencies file for qft_discovery.
# This may be replaced when dependencies are built.
