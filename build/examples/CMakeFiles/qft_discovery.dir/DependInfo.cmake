
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/qft_discovery.cpp" "examples/CMakeFiles/qft_discovery.dir/qft_discovery.cpp.o" "gcc" "examples/CMakeFiles/qft_discovery.dir/qft_discovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/toqm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/toqm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/qasm/CMakeFiles/toqm_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/toqm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/toqm/CMakeFiles/toqm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristic/CMakeFiles/toqm_heuristic.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/toqm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/qftopt/CMakeFiles/toqm_qftopt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
