file(REMOVE_RECURSE
  "CMakeFiles/qft_discovery.dir/qft_discovery.cpp.o"
  "CMakeFiles/qft_discovery.dir/qft_discovery.cpp.o.d"
  "qft_discovery"
  "qft_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qft_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
