# Empty compiler generated dependencies file for toqm_tests.
# This may be replaced when dependencies are built.
