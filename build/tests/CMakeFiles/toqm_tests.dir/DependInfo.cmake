
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arch/arch_test.cpp" "tests/CMakeFiles/toqm_tests.dir/arch/arch_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/arch/arch_test.cpp.o.d"
  "/root/repo/tests/arch/extra_arch_test.cpp" "tests/CMakeFiles/toqm_tests.dir/arch/extra_arch_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/arch/extra_arch_test.cpp.o.d"
  "/root/repo/tests/arch/token_swapping_test.cpp" "tests/CMakeFiles/toqm_tests.dir/arch/token_swapping_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/arch/token_swapping_test.cpp.o.d"
  "/root/repo/tests/baselines/baselines_test.cpp" "tests/CMakeFiles/toqm_tests.dir/baselines/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/baselines/baselines_test.cpp.o.d"
  "/root/repo/tests/heuristic/heuristic_mapper_test.cpp" "tests/CMakeFiles/toqm_tests.dir/heuristic/heuristic_mapper_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/heuristic/heuristic_mapper_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/toqm_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/toqm_tests.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/integration/property_test.cpp.o.d"
  "/root/repo/tests/integration/transform_property_test.cpp" "tests/CMakeFiles/toqm_tests.dir/integration/transform_property_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/integration/transform_property_test.cpp.o.d"
  "/root/repo/tests/ir/analysis_test.cpp" "tests/CMakeFiles/toqm_tests.dir/ir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/ir/analysis_test.cpp.o.d"
  "/root/repo/tests/ir/circuit_test.cpp" "tests/CMakeFiles/toqm_tests.dir/ir/circuit_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/ir/circuit_test.cpp.o.d"
  "/root/repo/tests/ir/dag_schedule_test.cpp" "tests/CMakeFiles/toqm_tests.dir/ir/dag_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/ir/dag_schedule_test.cpp.o.d"
  "/root/repo/tests/ir/direction_test.cpp" "tests/CMakeFiles/toqm_tests.dir/ir/direction_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/ir/direction_test.cpp.o.d"
  "/root/repo/tests/ir/export_test.cpp" "tests/CMakeFiles/toqm_tests.dir/ir/export_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/ir/export_test.cpp.o.d"
  "/root/repo/tests/ir/gate_test.cpp" "tests/CMakeFiles/toqm_tests.dir/ir/gate_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/ir/gate_test.cpp.o.d"
  "/root/repo/tests/ir/generators_test.cpp" "tests/CMakeFiles/toqm_tests.dir/ir/generators_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/ir/generators_test.cpp.o.d"
  "/root/repo/tests/ir/latency_layout_test.cpp" "tests/CMakeFiles/toqm_tests.dir/ir/latency_layout_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/ir/latency_layout_test.cpp.o.d"
  "/root/repo/tests/ir/transforms_test.cpp" "tests/CMakeFiles/toqm_tests.dir/ir/transforms_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/ir/transforms_test.cpp.o.d"
  "/root/repo/tests/qasm/file_roundtrip_test.cpp" "tests/CMakeFiles/toqm_tests.dir/qasm/file_roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/qasm/file_roundtrip_test.cpp.o.d"
  "/root/repo/tests/qasm/importer_writer_test.cpp" "tests/CMakeFiles/toqm_tests.dir/qasm/importer_writer_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/qasm/importer_writer_test.cpp.o.d"
  "/root/repo/tests/qasm/lexer_test.cpp" "tests/CMakeFiles/toqm_tests.dir/qasm/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/qasm/lexer_test.cpp.o.d"
  "/root/repo/tests/qasm/parser_test.cpp" "tests/CMakeFiles/toqm_tests.dir/qasm/parser_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/qasm/parser_test.cpp.o.d"
  "/root/repo/tests/qasm/qelib_semantics_test.cpp" "tests/CMakeFiles/toqm_tests.dir/qasm/qelib_semantics_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/qasm/qelib_semantics_test.cpp.o.d"
  "/root/repo/tests/qasm/robustness_test.cpp" "tests/CMakeFiles/toqm_tests.dir/qasm/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/qasm/robustness_test.cpp.o.d"
  "/root/repo/tests/qftopt/qft_patterns_test.cpp" "tests/CMakeFiles/toqm_tests.dir/qftopt/qft_patterns_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/qftopt/qft_patterns_test.cpp.o.d"
  "/root/repo/tests/sim/noise_test.cpp" "tests/CMakeFiles/toqm_tests.dir/sim/noise_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/sim/noise_test.cpp.o.d"
  "/root/repo/tests/sim/stabilizer_test.cpp" "tests/CMakeFiles/toqm_tests.dir/sim/stabilizer_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/sim/stabilizer_test.cpp.o.d"
  "/root/repo/tests/sim/statevector_test.cpp" "tests/CMakeFiles/toqm_tests.dir/sim/statevector_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/sim/statevector_test.cpp.o.d"
  "/root/repo/tests/sim/verifier_test.cpp" "tests/CMakeFiles/toqm_tests.dir/sim/verifier_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/sim/verifier_test.cpp.o.d"
  "/root/repo/tests/toqm/cost_estimator_test.cpp" "tests/CMakeFiles/toqm_tests.dir/toqm/cost_estimator_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/toqm/cost_estimator_test.cpp.o.d"
  "/root/repo/tests/toqm/expander_filter_test.cpp" "tests/CMakeFiles/toqm_tests.dir/toqm/expander_filter_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/toqm/expander_filter_test.cpp.o.d"
  "/root/repo/tests/toqm/ida_star_test.cpp" "tests/CMakeFiles/toqm_tests.dir/toqm/ida_star_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/toqm/ida_star_test.cpp.o.d"
  "/root/repo/tests/toqm/initial_layout_test.cpp" "tests/CMakeFiles/toqm_tests.dir/toqm/initial_layout_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/toqm/initial_layout_test.cpp.o.d"
  "/root/repo/tests/toqm/mapper_test.cpp" "tests/CMakeFiles/toqm_tests.dir/toqm/mapper_test.cpp.o" "gcc" "tests/CMakeFiles/toqm_tests.dir/toqm/mapper_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/toqm_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/toqm_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/qasm/CMakeFiles/toqm_qasm.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/toqm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/toqm/CMakeFiles/toqm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/heuristic/CMakeFiles/toqm_heuristic.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/toqm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/qftopt/CMakeFiles/toqm_qftopt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
