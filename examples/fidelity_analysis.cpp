/**
 * @file
 * Why time-optimality matters physically (paper Section 1): qubits
 * decohere, so a shorter transformed circuit is a more reliable one.
 * This example maps the same algorithm with every mapper in the
 * repository and scores the results with sim::estimateFidelity,
 * sweeping the decoherence horizon T2 to show the regimes: with slow
 * decoherence, swap count dominates (SABRE's objective); the shorter
 * the horizon, the more the time-optimal circuit wins.
 *
 *   $ ./fidelity_analysis
 */

#include <cstdio>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "baselines/zulehner.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/noise.hpp"

int
main()
{
    using namespace toqm;
    const auto device = arch::ibmQ20Tokyo();
    const auto latency = ir::LatencyModel::ibmPreset();
    const ir::Circuit circuit =
        ir::benchmarkStandIn("vqe_like", 10, 1200);

    heuristic::HeuristicMapper ours_mapper(device);
    const auto ours = ours_mapper.map(circuit);
    baselines::SabreMapper sabre_mapper(device);
    const auto sabre = sabre_mapper.map(circuit);
    baselines::ZulehnerMapper zulehner_mapper(device);
    const auto zulehner = zulehner_mapper.map(circuit);
    if (!ours.success || !sabre.success || !zulehner.success) {
        std::fprintf(stderr, "a mapper failed\n");
        return 1;
    }

    struct Entry
    {
        const char *name;
        const ir::Circuit *physical;
    };
    const Entry entries[] = {
        {"TOQM heuristic", &ours.mapped.physical},
        {"SABRE", &sabre.mapped.physical},
        {"Zulehner", &zulehner.mapped.physical},
    };

    std::printf("%-16s %8s %7s |", "mapper", "cycles", "swaps");
    const double horizons[] = {50000.0, 10000.0, 3000.0, 1000.0};
    for (double t2 : horizons)
        std::printf(" T2=%-6.0f", t2);
    std::printf("\n");

    for (const Entry &entry : entries) {
        const int cycles =
            ir::scheduleAsap(*entry.physical, latency).makespan;
        std::printf("%-16s %8d %7d |", entry.name, cycles,
                    entry.physical->numSwaps());
        for (double t2 : horizons) {
            sim::NoiseModel noise;
            noise.t2Cycles = t2;
            const auto f = sim::estimateFidelity(
                *entry.physical, latency, noise,
                circuit.numQubits());
            std::printf(" %9.4f", f.total());
        }
        std::printf("\n");
    }

    std::printf("\nA time-optimal schedule mitigates decoherence "
                "even when it inserts more\nswaps — the shorter the "
                "T2 horizon, the larger its fidelity edge (the\n"
                "paper's core argument for time over gate count).\n");
    return 0;
}
