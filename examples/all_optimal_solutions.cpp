/**
 * @file
 * Appendix B: enumerating ALL time-optimal solutions.
 *
 * The A* search normally stops at the first optimal terminal; for
 * pattern discovery the paper keeps popping until the queue's best f
 * exceeds the optimum, collecting every optimal solution — because
 * not every optimal solution has a recurring structure (for QFT-8 on
 * 2x4 without mixing, only one of the eight optimal solutions shows
 * the Fig 14 pattern).
 *
 * This example enumerates all optimal solutions of QFT-4 on a 2x2
 * grid and of a small routing problem, prints them, and shows how
 * few of them are "structured".
 *
 *   $ ./all_optimal_solutions
 */

#include <cstdio>
#include <iostream>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace {

void
enumerate(const char *title, const toqm::ir::Circuit &circuit,
          const toqm::arch::CouplingGraph &device,
          toqm::core::MapperConfig config)
{
    using namespace toqm;
    config.findAllOptimal = true;
    core::OptimalMapper mapper(device, config);
    const auto res = mapper.map(circuit);
    std::printf("%s: optimum = %d cycles, %zu distinct optimal "
                "solution(s)\n",
                title, res.cycles, res.allOptimal.size());
    int idx = 0;
    for (const auto &sol : res.allOptimal) {
        const auto verdict = sim::verifyMapping(circuit, sol, device);
        std::printf("  solution %d: %d swaps, verified %s\n", ++idx,
                    sol.physical.numSwaps(), verdict.message.c_str());
        if (idx <= 3) {
            std::cout << ir::renderTimeline(sol.physical,
                                            config.latency);
        }
    }
    if (idx > 3)
        std::printf("  (timelines shown for the first 3 only)\n");
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace toqm;

    {
        core::MapperConfig config;
        config.latency = ir::LatencyModel::qftPreset();
        enumerate("QFT-4 on 2x2 grid", ir::qftSkeleton(4),
                  arch::grid(2, 2), config);
    }
    {
        core::MapperConfig config; // ibm preset
        ir::Circuit c(3);
        c.addCX(0, 2);
        enumerate("single distant CX on LNN-3", c, arch::lnn(3),
                  config);
    }
    {
        core::MapperConfig config;
        config.latency = ir::LatencyModel::qftPreset();
        config.allowConcurrentSwapAndGate = false;
        enumerate("QFT-4 on 2x2, no GT/swap mixing",
                  ir::qftSkeleton(4), arch::grid(2, 2), config);
    }
    std::printf("Appendix B's point: to generalize a pattern one "
                "must look across ALL optima —\nsome are structured, "
                "most are not.\n");
    return 0;
}
