/**
 * @file
 * Iterative workloads (VQE/QAOA-style): the same ansatz circuit runs
 * many times, so the mapped circuit must END where it STARTED or the
 * next iteration begins from a scrambled layout.
 *
 * This example composes three library pieces:
 *   1. the practical mapper (Section 6.2) routes one iteration;
 *   2. token swapping (arch/token_swapping) appends the swaps that
 *      return every qubit home, making the block repeatable;
 *   3. the reliability model (sim/noise) scores k chained iterations
 *      against the alternative of re-mapping from the scrambled
 *      layout each time.
 *
 *   $ ./iterative_workload [iterations]   (default 4)
 */

#include <cstdio>
#include <cstdlib>

#include "arch/architectures.hpp"
#include "arch/token_swapping.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/mapped_circuit.hpp"
#include "ir/schedule.hpp"
#include "sim/noise.hpp"
#include "sim/verifier.hpp"

int
main(int argc, char **argv)
{
    using namespace toqm;
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 4;

    const auto device = arch::ibmQ20Tokyo();
    const auto latency = ir::LatencyModel::ibmPreset();
    // A hardware-efficient-ansatz-shaped block: layered CX ladder
    // plus rotations.
    ir::Circuit ansatz(8, "ansatz");
    for (int layer = 0; layer < 3; ++layer) {
        for (int q = 0; q < 8; ++q)
            ansatz.add(ir::Gate(ir::GateKind::RY, q,
                                std::vector<double>{0.1 * (q + 1)}));
        for (int q = layer % 2; q + 1 < 8; q += 2)
            ansatz.addCX(q, q + 1);
        ansatz.addCX(0, 7); // long-range entangler: forces routing
    }

    heuristic::HeuristicMapper mapper(device);
    auto mapped = mapper.map(ansatz);
    if (!mapped.success) {
        std::fprintf(stderr, "mapping failed\n");
        return 1;
    }
    const int routed_cycles = mapped.cycles;

    // Close the loop: return every qubit to its starting position.
    auto closed = mapped.mapped;
    const auto restore = arch::routeBackToInitial(
        device, closed.initialLayout, closed.finalLayout);
    for (const auto &[a, b] : restore)
        closed.physical.addSwap(a, b);
    closed.finalLayout =
        ir::propagateLayout(closed.physical, closed.initialLayout);
    const int closed_cycles =
        ir::scheduleAsap(closed.physical, latency).makespan;

    const auto verdict = sim::verifyMapping(ansatz, closed, device);
    std::printf("ansatz: %d gates; one routed iteration: %d cycles; "
                "layout-closed iteration: %d cycles (+%zu swaps)  "
                "verify=%s\n",
                ansatz.size(), routed_cycles, closed_cycles,
                restore.size(), verdict.message.c_str());
    std::printf("closed block ends at its own initial layout: %s\n",
                closed.finalLayout == closed.initialLayout ? "yes"
                                                           : "NO");

    // k iterations: chain the closed block.
    ir::Circuit chained(device.numQubits(), "chained");
    for (int it = 0; it < iterations; ++it) {
        for (const ir::Gate &g : closed.physical.gates())
            chained.add(g);
    }
    const int chained_cycles =
        ir::scheduleAsap(chained, latency).makespan;

    sim::NoiseModel noise;
    noise.t2Cycles = 20000.0;
    const auto fidelity = sim::estimateFidelity(
        chained, latency, noise, ansatz.numQubits());
    std::printf("\n%d chained iterations: %d cycles total "
                "(%.1f per iteration), est. fidelity %.4f\n",
                iterations, chained_cycles,
                static_cast<double>(chained_cycles) / iterations,
                fidelity.total());
    std::printf("gate fidelity %.4f x decoherence %.4f\n",
                fidelity.gateFidelity,
                fidelity.decoherenceFidelity);
    std::printf("\nWithout the restore pass each iteration would "
                "start from a scrambled layout\nand need a fresh "
                "mapping pass — the closed block amortizes routing "
                "across\nthe whole optimization loop.\n");
    return verdict.ok ? 0 : 1;
}
