/**
 * @file
 * The Table 3 workflow on one circuit: route a large logical circuit
 * onto IBM Q20 Tokyo with the practical (Section 6.2) mapper and
 * compare the transformed circuit's execution time against the SABRE
 * and Zulehner baselines under the shared latency model.
 *
 *   $ ./large_circuit_routing [num_gates]   (default 5000)
 */

#include <cstdio>
#include <cstdlib>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "baselines/zulehner.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/verifier.hpp"

int
main(int argc, char **argv)
{
    using namespace toqm;
    const int num_gates = argc > 1 ? std::atoi(argv[1]) : 5000;

    const auto device = arch::ibmQ20Tokyo();
    const auto latency = ir::LatencyModel::ibmPreset();
    const ir::Circuit circuit =
        ir::benchmarkStandIn("example_workload", 12, num_gates);
    const int ideal = ir::idealCycles(circuit, latency);
    std::printf("workload: %d qubits, %d gates; ideal (all-to-all) "
                "time = %d cycles\n",
                circuit.numQubits(), circuit.size(), ideal);

    // Ours: time-aware routing with swaps overlapping computation.
    heuristic::HeuristicMapper ours(device);
    const auto ours_res = ours.map(circuit);
    if (!ours_res.success) {
        std::fprintf(stderr, "heuristic mapper failed\n");
        return 1;
    }
    const auto ours_check =
        sim::verifyMapping(circuit, ours_res.mapped, device);
    std::printf("TOQM heuristic: %6d cycles  (%4d swaps, %.2f s)  "
                "verify=%s\n",
                ours_res.cycles, ours_res.mapped.physical.numSwaps(),
                ours_res.stats.seconds, ours_check.message.c_str());

    // SABRE: swap-count-oriented state of the art.
    baselines::SabreMapper sabre(device);
    const auto sabre_res = sabre.map(circuit);
    const int sabre_cycles =
        ir::scheduleAsap(sabre_res.mapped.physical, latency).makespan;
    std::printf("SABRE:          %6d cycles  (%4d swaps)          "
                "verify=%s\n",
                sabre_cycles, sabre_res.swapCount,
                sim::verifyMapping(circuit, sabre_res.mapped, device)
                    .message.c_str());

    // Zulehner: layer-by-layer A* swap minimization.
    baselines::ZulehnerMapper zulehner(device);
    const auto zul_res = zulehner.map(circuit);
    const int zul_cycles =
        ir::scheduleAsap(zul_res.mapped.physical, latency).makespan;
    std::printf("Zulehner:       %6d cycles  (%4d swaps)          "
                "verify=%s\n",
                zul_cycles, zul_res.swapCount,
                sim::verifyMapping(circuit, zul_res.mapped, device)
                    .message.c_str());

    std::printf("\nspeedup over SABRE:    %.2fx\n",
                static_cast<double>(sabre_cycles) / ours_res.cycles);
    std::printf("speedup over Zulehner: %.2fx\n",
                static_cast<double>(zul_cycles) / ours_res.cycles);
    std::printf("\nNote how SABRE often inserts FEWER swaps yet "
                "yields a SLOWER circuit:\ngate count and circuit "
                "time are different objectives (paper Fig 1).\n");
    return 0;
}
