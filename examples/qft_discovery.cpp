/**
 * @file
 * Reproduce the paper's flagship qualitative result (Section 6.1.1):
 * discover the time-optimal QFT schedule on LNN with the exact A*
 * search, visualize its butterfly pattern, and check it against the
 * generalized closed-form solution (Fig 13a) — then do the same
 * comparison on the 2xN grid where the paper reports the first known
 * optimal pattern.
 *
 *   $ ./qft_discovery [n]      (default n = 6)
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "arch/architectures.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "ir/transforms.hpp"
#include "qftopt/qft_patterns.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

int
main(int argc, char **argv)
{
    using namespace toqm;
    const int n = argc > 1 ? std::atoi(argv[1]) : 6;
    if (n < 4 || n > 8 || n % 2 != 0) {
        std::fprintf(stderr,
                     "usage: %s [n]   with even n in 4..8 "
                     "(exact search blows up beyond that —\n"
                     "that is exactly why the generalized pattern "
                     "matters)\n",
                     argv[0]);
        return 2;
    }

    const ir::Circuit qft = ir::qftSkeleton(n);
    core::MapperConfig config;
    config.latency = ir::LatencyModel::qftPreset();

    // --- LNN: search vs closed form -----------------------------
    {
        const auto device = arch::lnn(n);
        core::OptimalMapper mapper(device, config);
        const auto res = mapper.map(qft); // natural order layout
        const auto pattern = qftopt::qftLnnButterfly(n);
        std::printf("QFT-%d on LNN:   A* optimum = %d cycles "
                    "(%.2f s, %llu nodes); closed form 4n-7 = %d\n",
                    n, res.cycles, res.stats.seconds,
                    static_cast<unsigned long long>(
                        res.stats.expanded),
                    pattern.depth());
        const auto check = qftopt::validateQftSolution(pattern, n);
        std::printf("  generalized butterfly valid: %s\n",
                    check.message.c_str());
        std::cout << pattern.renderSteps();
    }

    // --- 2xN grid: the paper's newly discovered pattern ---------
    {
        const auto pattern = qftopt::qftGrid2xnMixed(n);
        const auto device = pattern.graph;
        core::OptimalMapper mapper(device, config);
        const auto res = mapper.map(qft, pattern.initialLayout);
        std::printf("\nQFT-%d on 2x%d:  A* optimum = %d cycles "
                    "(%.2f s); closed form 3n-7 = %d\n",
                    n, n / 2, res.cycles, res.stats.seconds,
                    pattern.depth());
        const auto check = qftopt::validateQftSolution(pattern, n);
        std::printf("  generalized 2xN pattern valid: %s\n",
                    check.message.c_str());

        // The pattern really is a hardware-compliant execution of
        // the skeleton circuit.
        const auto verdict = sim::verifyMapping(
            qft, pattern.toMappedCircuit(), device);
        std::printf("  structural verification: %s\n",
                    verdict.message.c_str());
        std::cout << pattern.renderSteps();
    }

    // --- automated recurrence detection (Appendix B) -------------
    {
        const auto pattern = qftopt::qftLnnButterfly(n);
        const auto mapped = pattern.toMappedCircuit();
        const auto signature = ir::layerSignature(
            mapped.physical, ir::LatencyModel::qftPreset());
        const int period = ir::detectRecurrence(
            signature, 1, 8, /*ignore_counts=*/true);
        std::printf("\nAppendix B automation: the LNN butterfly's "
                    "layer shapes recur with period %d\n",
                    period);
    }

    // --- constrained mode (Fig 14) -------------------------------
    {
        const auto pattern = qftopt::qftGrid2xnUnmixed(n);
        std::printf("\nQFT-%d on 2x%d without GT/swap mixing: "
                    "closed form 3n-5 = %d cycles\n",
                    n, n / 2, pattern.depth());
        const auto check =
            qftopt::validateQftSolution(pattern, n, true);
        std::printf("  pattern valid (and never mixes): %s\n",
                    check.message.c_str());
    }
    return 0;
}
