/**
 * @file
 * Quickstart: parse an OpenQASM 2.0 program, map it time-optimally
 * onto IBM QX2, verify the result, and print the transformed circuit.
 *
 *   $ ./quickstart
 */

#include <cstdio>
#include <iostream>

#include "arch/architectures.hpp"
#include "ir/schedule.hpp"
#include "qasm/importer.hpp"
#include "qasm/writer.hpp"
#include "sim/statevector.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace {

constexpr const char *program = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q[0];
cx q[0], q[1];
cx q[0], q[2];
cx q[0], q[3];
t q[2];
cx q[3], q[1];
)";

} // namespace

int
main()
{
    using namespace toqm;

    // 1. Front end: QASM text -> flat circuit IR.
    const auto imported = qasm::importString(program);
    const ir::Circuit &logical = imported.circuit;
    std::printf("logical circuit: %d qubits, %d gates\n",
                logical.numQubits(), logical.size());

    // 2. Pick a device and a latency model (1q=1, CX=2, SWAP=6
    //    cycles: the paper's IBM setup).
    const auto device = arch::ibmQX2();
    core::MapperConfig config;
    config.latency = ir::LatencyModel::ibmPreset();
    config.searchInitialMapping = true; // mode (2) of Section 5.3

    // 3. Map time-optimally.
    core::OptimalMapper mapper(device, config);
    const auto result = mapper.map(logical);
    if (!result.success) {
        std::fprintf(stderr, "mapping failed (search budget)\n");
        return 1;
    }
    std::printf("optimal cycles: %d (ideal all-to-all: %d)\n",
                result.cycles,
                ir::idealCycles(logical, config.latency));
    std::printf("inserted swaps: %d, search expanded %llu nodes "
                "in %.3f s\n",
                result.mapped.physical.numSwaps(),
                static_cast<unsigned long long>(result.stats.expanded),
                result.stats.seconds);

    // 4. Never trust a mapper: verify structurally and semantically.
    const auto verdict =
        sim::verifyMapping(logical, result.mapped, device);
    std::printf("structural verification: %s\n",
                verdict.message.c_str());
    std::printf("semantic equivalence:    %s\n",
                sim::semanticallyEquivalent(logical, result.mapped)
                    ? "ok"
                    : "FAILED");

    // 5. Emit hardware-ready QASM.
    std::cout << "\n--- transformed circuit ---\n"
              << qasm::writeMappedCircuit(result.mapped);

    // 6. Bonus: a cycle-by-cycle occupancy chart (paper Fig 4a).
    std::cout << "\n--- timeline ---\n"
              << ir::renderTimeline(result.mapped.physical,
                                    config.latency);
    return verdict.ok ? 0 : 1;
}
