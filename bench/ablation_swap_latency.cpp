/**
 * @file
 * Sensitivity to the swap latency (Section 2.2 makes it a model
 * parameter): how the advantage of time-aware mapping over the
 * gate-count-oriented baselines changes as a SWAP costs 1, 3, 6 or
 * 9 cycles.  The expectation: the more expensive swaps are relative
 * to computation, the more overlapping swaps with gates pays off.
 */

#include <cstdio>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "baselines/zulehner.hpp"
#include "bench_util.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"

int
main()
{
    using namespace toqm;
    bench::banner("Ablation: swap latency (1q=1, CX=2, SWAP=L)");

    const auto device = arch::ibmQ20Tokyo();
    const int gates = bench::fullMode() ? 8000 : 2000;
    const ir::Circuit circuit =
        ir::benchmarkStandIn("swap_latency_sweep", 11, gates);

    std::printf("%6s | %7s %8s %7s | %7s %7s\n", "L", "sabre",
                "zulehner", "ours", "vs-sab", "vs-zul");
    for (int swap_latency : {1, 3, 6, 9}) {
        const ir::LatencyModel latency(1, 2, swap_latency);

        baselines::SabreMapper sabre(device);
        const auto rs = sabre.map(circuit);
        const int sabre_cycles =
            ir::scheduleAsap(rs.mapped.physical, latency).makespan;

        baselines::ZulehnerMapper zulehner(device);
        const auto rz = zulehner.map(circuit);
        const int zul_cycles =
            ir::scheduleAsap(rz.mapped.physical, latency).makespan;

        heuristic::HeuristicConfig cfg;
        cfg.latency = latency;
        heuristic::HeuristicMapper ours(device, cfg);
        const auto ro = ours.map(circuit);

        std::printf("%6d | %7d %8d %7d | %6.2fx %6.2fx\n",
                    swap_latency, sabre_cycles, zul_cycles, ro.cycles,
                    static_cast<double>(sabre_cycles) / ro.cycles,
                    static_cast<double>(zul_cycles) / ro.cycles);
        std::fflush(stdout);
    }
    std::printf("\nnote: the baselines are latency-oblivious, so "
                "their circuits are fixed; only the clock changes. "
                "Ours re-optimizes per latency model.\n");
    return 0;
}
