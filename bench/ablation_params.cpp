/**
 * @file
 * Sensitivity of the practical mapper (Section 6.2) to its
 * parameters: the paper fixes k=10, g=2000, v=1000; this bench
 * sweeps k, the queue bounds, the beam width, and the routing-term
 * weight, on a mid-size Tokyo workload.
 */

#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_util.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "toqm/initial_layout.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"

namespace {

using namespace toqm;

void
run(const char *label, const ir::Circuit &circuit,
    const arch::CouplingGraph &device, heuristic::HeuristicConfig cfg)
{
    heuristic::HeuristicMapper mapper(device, cfg);
    const auto res = mapper.map(circuit);
    if (res.success) {
        std::printf("  %-28s cycles=%6d swaps=%5d expanded=%8llu "
                    "time=%6.2fs\n",
                    label, res.cycles,
                    res.mapped.physical.numSwaps(),
                    static_cast<unsigned long long>(
                        res.stats.expanded),
                    res.stats.seconds);
    } else {
        std::printf("  %-28s FAILED\n", label);
    }
    std::fflush(stdout);
}

} // namespace

int
main()
{
    bench::banner("Ablation: Section 6.2 parameters (k, g/v, beam "
                  "width, route weight)");

    const auto device = arch::ibmQ20Tokyo();
    const int gates = bench::fullMode() ? 10000 : 2500;
    const ir::Circuit circuit =
        ir::benchmarkStandIn("param_sweep", 12, gates);
    std::printf("workload: 12 qubits, %d gates, ideal %d cycles\n\n",
                gates,
                ir::idealCycles(circuit,
                                ir::LatencyModel::ibmPreset()));

    std::printf("beam width (default mode):\n");
    for (int width : {1, 2, 5, 10, 20}) {
        heuristic::HeuristicConfig cfg;
        cfg.beamWidth = width;
        char label[64];
        std::snprintf(label, sizeof(label), "beamWidth=%d", width);
        run(label, circuit, device, cfg);
    }

    std::printf("\nrouting-term weight:\n");
    for (double w : {0.0, 0.25, 1.0, 4.0}) {
        heuristic::HeuristicConfig cfg;
        cfg.routeWeight = w;
        char label[64];
        std::snprintf(label, sizeof(label), "routeWeight=%.2f", w);
        run(label, circuit, device, cfg);
    }

    std::printf("\ninitial-layout seed (extension; Section 5.3 "
                "exact search does not scale to Tokyo):\n");
    {
        heuristic::HeuristicConfig cfg;
        run("on-the-fly (paper 6.2)", circuit, device, cfg);
        heuristic::HeuristicMapper mapper(device, cfg);
        const auto greedy =
            mapper.map(circuit, core::greedyLayout(circuit, device));
        std::printf("  %-28s cycles=%6d swaps=%5d\n", "greedy seed",
                    greedy.cycles, greedy.mapped.physical.numSwaps());
        const auto annealed = mapper.map(
            circuit, core::annealedLayout(circuit, device));
        std::printf("  %-28s cycles=%6d swaps=%5d\n",
                    "annealed seed", annealed.cycles,
                    annealed.mapped.physical.numSwaps());
    }

    std::printf("\ntop-k / queue bounds (paper's GlobalQueue "
                "scheme, smaller workload):\n");
    const ir::Circuit small =
        ir::benchmarkStandIn("param_sweep_small", 10, 600);
    for (int k : {3, 10, 25}) {
        heuristic::HeuristicConfig cfg;
        cfg.mode = heuristic::SearchMode::GlobalQueue;
        cfg.topK = k;
        char label[64];
        std::snprintf(label, sizeof(label), "GlobalQueue k=%d", k);
        run(label, small, device, cfg);
    }
    for (size_t cap : {500u, 2000u, 8000u}) {
        heuristic::HeuristicConfig cfg;
        cfg.mode = heuristic::SearchMode::GlobalQueue;
        cfg.queueCap = cap;
        cfg.queueTrim = cap / 2;
        char label[64];
        std::snprintf(label, sizeof(label),
                      "GlobalQueue g=%zu v=%zu", cap, cap / 2);
        run(label, small, device, cfg);
    }
    return 0;
}
