/**
 * @file
 * Ablation of the search framework's components (Section 4.2 / Fig
 * 6): how much do the hash filter (equivalence + comparative
 * analysis), the redundancy eliminations, and the upper-bound probe
 * each contribute?  Optimal cycles must be identical across rows;
 * expanded nodes and wall time show the contribution.
 */

#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_util.hpp"
#include "ir/generators.hpp"
#include "toqm/mapper.hpp"

namespace {

using namespace toqm;

void
run(const char *label, const arch::CouplingGraph &device,
    const ir::Circuit &circuit, core::MapperConfig config)
{
    config.latency = ir::LatencyModel::qftPreset();
    config.maxExpandedNodes = 20'000'000;
    core::OptimalMapper mapper(device, config);
    const auto res = mapper.map(circuit);
    if (res.success) {
        std::printf("  %-22s cycles=%3d expanded=%9llu "
                    "generated=%10llu time=%7.2fs\n",
                    label, res.cycles,
                    static_cast<unsigned long long>(
                        res.stats.expanded),
                    static_cast<unsigned long long>(
                        res.stats.generated),
                    res.stats.seconds);
    } else {
        std::printf("  %-22s exhausted the node budget\n", label);
    }
    std::fflush(stdout);
}

void
sweep(const char *title, const arch::CouplingGraph &device,
      const ir::Circuit &circuit)
{
    std::printf("%s:\n", title);
    core::MapperConfig base;
    run("full framework", device, circuit, base);
    {
        core::MapperConfig cfg = base;
        cfg.useFilter = false;
        run("no hash filter", device, circuit, cfg);
    }
    {
        core::MapperConfig cfg = base;
        cfg.useRedundancyElimination = false;
        run("no redundancy elim.", device, circuit, cfg);
    }
    {
        core::MapperConfig cfg = base;
        cfg.useCyclicSwapElimination = false;
        run("no cyclic-swap elim.", device, circuit, cfg);
    }
    {
        core::MapperConfig cfg = base;
        cfg.useUpperBoundPruning = false;
        run("no upper-bound probe", device, circuit, cfg);
    }
}

} // namespace

int
main()
{
    bench::banner("Ablation: search-framework components (optimal "
                  "mode)");

    sweep("QFT-5 on LNN-5", arch::lnn(5), ir::qftSkeleton(5));
    if (bench::fullMode()) {
        sweep("QFT-6 on LNN-6", arch::lnn(6), ir::qftSkeleton(6));
        std::vector<int> layout(6);
        for (int c = 0; c < 3; ++c)
            for (int r = 0; r < 2; ++r)
                layout[static_cast<size_t>(2 * c + r)] = r * 3 + c;
        sweep("QFT-6 on 2x3", arch::grid(2, 3), ir::qftSkeleton(6));
    } else {
        std::printf("\n(QFT-6 sweeps run in full mode; the "
                    "no-filter row alone needs minutes there)\n");
    }
    std::printf("\nexpected shape: identical optima; removing the "
                "filter costs the most, the other eliminations "
                "contribute smaller but consistent factors.\n");
    return 0;
}
