/**
 * @file
 * google-benchmark suite for the serve layer: what warm state and
 * the content-addressed result cache buy over a cold `toqm_map`-style
 * run, on the qft8/Tokyo instance the README's serving numbers quote.
 *
 *  - BM_ServeColdSearch: everything cold per iteration — the
 *    architecture (and its Floyd-Warshall distance table) is rebuilt,
 *    the result cache is absent, slab recycling is off.  This is the
 *    per-request cost a cold CLI invocation pays (minus process
 *    startup, which the daemon also amortizes).
 *  - BM_ServeWarmVsCold: the same request against a long-lived
 *    MapService with the warm tiers on (ArchCache primed, SlabCache
 *    armed) but NO result cache: the search still runs every time.
 *  - BM_ServeCacheHit: the same request against a service whose
 *    result cache holds the answer — the steady-state repeat cost.
 *    The CI gate requires this to be >= 10x below BM_ServeColdSearch
 *    (ci/check_bench_regression.py --serve).
 */

#include <benchmark/benchmark.h>

#include "ir/generators.hpp"
#include "search/node_pool.hpp"
#include "serve/service.hpp"
#include "serve/warm.hpp"

namespace {

using namespace toqm;

serve::MapRequest
qft8TokyoRequest()
{
    serve::MapRequest request;
    request.circuit = ir::qftConcrete(8);
    request.arch = "tokyo";
    request.mapper = "heuristic";
    return request;
}

void
BM_ServeColdSearch(benchmark::State &state)
{
    const serve::MapRequest request = qft8TokyoRequest();
    search::SlabCache::global().disarm();
    for (auto _ : state) {
        serve::ArchCache::global().clear();
        serve::ServiceConfig config;
        config.cacheBytes = 0;
        serve::MapService service(config);
        const serve::MapResponse response = service.handle(request);
        if (response.code != 0)
            state.SkipWithError("cold search failed");
        benchmark::DoNotOptimize(response.cycles);
    }
}
BENCHMARK(BM_ServeColdSearch)->Unit(benchmark::kMillisecond);

void
BM_ServeWarmVsCold(benchmark::State &state)
{
    const serve::MapRequest request = qft8TokyoRequest();
    search::SlabCache::global().arm(64ull << 20);
    serve::ServiceConfig config;
    config.cacheBytes = 0;
    serve::MapService service(config);
    service.handle(request); // prime the arch + slab caches
    for (auto _ : state) {
        const serve::MapResponse response = service.handle(request);
        if (response.code != 0)
            state.SkipWithError("warm search failed");
        benchmark::DoNotOptimize(response.cycles);
    }
    search::SlabCache::global().disarm();
}
BENCHMARK(BM_ServeWarmVsCold)->Unit(benchmark::kMillisecond);

void
BM_ServeCacheHit(benchmark::State &state)
{
    const serve::MapRequest request = qft8TokyoRequest();
    serve::ServiceConfig config;
    config.cacheBytes = 64ull << 20;
    serve::MapService service(config);
    service.handle(request); // prime the result cache
    for (auto _ : state) {
        const serve::MapResponse response = service.handle(request);
        if (response.code != 0 || response.tier != "cache")
            state.SkipWithError("expected an exact cache hit");
        benchmark::DoNotOptimize(response.cycles);
    }
}
BENCHMARK(BM_ServeCacheHit)->Unit(benchmark::kMicrosecond);

} // namespace

BENCHMARK_MAIN();
