/**
 * @file
 * Figures 2 and 11 (and 16): time-optimal QFT on LNN.
 *
 * Runs the exact A* search for QFT-n on LNN (n = 4..7 by default,
 * n = 8 in full mode), confirming the 17-cycle QFT-6 optimum and the
 * butterfly pattern, then validates the generalized Fig 13(a)
 * closed-form schedule up to n = 64 (depth 4n-7, matching Maslov's
 * manual LNN solution).
 */

#include <cstdio>
#include <iostream>

#include "arch/architectures.hpp"
#include "bench_util.hpp"
#include "ir/generators.hpp"
#include "qftopt/qft_patterns.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

int
main()
{
    using namespace toqm;
    bench::banner("Fig 2/11: optimal QFT on LNN (GT=1 cycle, "
                  "SWAP=1 cycle)");

    core::MapperConfig config;
    config.latency = ir::LatencyModel::qftPreset();

    std::printf("%-6s | %8s %9s %9s | %10s\n", "n", "A*-opt",
                "nodes", "time", "4n-7 form");
    const int max_n = bench::fullMode() ? 8 : 7;
    for (int n = 4; n <= max_n; ++n) {
        const ir::Circuit qft = ir::qftSkeleton(n);
        core::OptimalMapper mapper(arch::lnn(n), config);
        const auto res = mapper.map(qft);
        const auto pattern = qftopt::qftLnnButterfly(n);
        const char *note = "";
        if (res.cycles < pattern.depth())
            note = "  (A* beats the generalized pattern: "
                   "small-size exception)";
        else if (res.cycles > pattern.depth())
            note = "  MISMATCH";
        std::printf("qft-%-2d | %8d %9llu %8.2fs | %10d%s\n", n,
                    res.cycles,
                    static_cast<unsigned long long>(
                        res.stats.expanded),
                    res.stats.seconds, pattern.depth(), note);
        std::fflush(stdout);
        bench::recordSearchStats("fig_qft_lnn", res.stats);
    }

    std::printf("\ngeneralized butterfly (Fig 13a) validity and "
                "depth:\n");
    for (int n : {10, 16, 24, 32, 48, 64}) {
        const auto pattern = qftopt::qftLnnButterfly(n);
        const auto check = qftopt::validateQftSolution(pattern, n);
        std::printf("  n=%-3d depth=%4d (=4n-7)  %s\n", n,
                    pattern.depth(), check.message.c_str());
    }

    std::printf("\nthe QFT-6 butterfly, step by step (Fig 11):\n");
    std::cout << qftopt::qftLnnButterfly(6).renderSteps();

    // Cross-check the structured schedule against the structural
    // verifier as a MappedCircuit (Fig 2c / Fig 16 equivalence).
    const auto mapped = qftopt::qftLnnButterfly(6).toMappedCircuit();
    const auto verdict = sim::verifyMapping(ir::qftSkeleton(6), mapped,
                                            arch::lnn(6));
    std::printf("\nstructural verification of the pattern: %s\n",
                verdict.message.c_str());
    return 0;
}
