/**
 * @file
 * Table 3: the practical mapper versus SABRE and Zulehner on the
 * paper's 26 large benchmarks, on IBM Q20 Tokyo with 1q=1, CX=2,
 * SWAP=6 cycles.
 *
 * Circuits are deterministic stand-ins with each benchmark's
 * published qubit and gate counts (DESIGN.md).  The reproduced shape:
 * our transformed circuits execute in fewer cycles than both
 * baselines, with average speedup in the ~1.2x class, even though
 * SABRE typically inserts FEWER swaps (gate count != time).
 *
 * Quick mode caps the gate count per circuit; TOQM_BENCH_FULL=1 runs
 * the paper-scale sizes (up to 184k gates; expect a long run).
 */

#include <algorithm>
#include <cstdio>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "baselines/zulehner.hpp"
#include "bench_util.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/verifier.hpp"

namespace {

struct Row
{
    const char *name;
    int n;
    int gates;
};

/** The 26 benchmarks of the paper's Table 3. */
constexpr Row rows[] = {
    {"cm82a_208", 8, 650},      {"rd53_251", 8, 1291},
    {"urf2_277", 8, 20112},     {"urf1_278", 9, 54766},
    {"hwb8_113", 9, 69380},     {"urf1_149", 9, 184864},
    {"qft_10", 10, 200},        {"rd73_252", 10, 5321},
    {"sqn_258", 10, 10223},     {"z4_268", 11, 3073},
    {"life_238", 11, 22445},    {"9symml", 11, 34881},
    {"sqrt8_260", 12, 3009},    {"cycle10_2", 12, 6050},
    {"rd84_253", 12, 13658},    {"adr4_197", 13, 3439},
    {"root_255", 13, 17159},    {"dist_223", 13, 38046},
    {"cm42a_207", 14, 1776},    {"pm1_249", 14, 1776},
    {"cm85a_209", 14, 11414},   {"square_root", 15, 7630},
    {"ham15_107", 15, 8763},    {"dc2_222", 15, 9462},
    {"inc_237", 16, 10619},     {"mlp4_245", 16, 18852},
};

} // namespace

int
main()
{
    using namespace toqm;
    bench::banner("Table 3: heuristic vs SABRE vs Zulehner on IBM "
                  "Q20 Tokyo (1q=1, CX=2, SWAP=6)");

    const int gate_cap = bench::fullMode() ? 1 << 30 : 4000;
    const auto device = arch::ibmQ20Tokyo();
    const auto latency = ir::LatencyModel::ibmPreset();

    std::printf("%-12s %2s %6s | %6s | %7s %8s %7s | %7s %7s\n",
                "name", "n", "gates", "ideal", "sabre", "zulehner",
                "ours", "vs-sab", "vs-zul");

    bench::GeoMean vs_sabre, vs_zul;
    for (const Row &row : rows) {
        const int gates = std::min(row.gates, gate_cap);
        const ir::Circuit circuit =
            ir::benchmarkStandIn(row.name, row.n, gates);
        const int ideal = ir::idealCycles(circuit, latency);

        baselines::SabreMapper sabre(device);
        const auto sabre_res = sabre.map(circuit);
        const int sabre_cycles =
            sabre_res.success
                ? ir::scheduleAsap(sabre_res.mapped.physical, latency)
                      .makespan
                : -1;

        baselines::ZulehnerMapper zulehner(device);
        const auto zul_res = zulehner.map(circuit);
        const int zul_cycles =
            zul_res.success
                ? ir::scheduleAsap(zul_res.mapped.physical, latency)
                      .makespan
                : -1;

        heuristic::HeuristicMapper ours(device);
        const auto ours_res = ours.map(circuit);

        bool verified =
            ours_res.success &&
            sim::verifyMapping(circuit, ours_res.mapped, device).ok &&
            sabre_res.success &&
            sim::verifyMapping(circuit, sabre_res.mapped, device).ok &&
            zul_res.success &&
            sim::verifyMapping(circuit, zul_res.mapped, device).ok;

        const double s_sab =
            static_cast<double>(sabre_cycles) / ours_res.cycles;
        const double s_zul =
            static_cast<double>(zul_cycles) / ours_res.cycles;
        vs_sabre.add(s_sab);
        vs_zul.add(s_zul);

        std::printf("%-12s %2d %6d | %6d | %7d %8d %7d | %6.2fx "
                    "%6.2fx%s\n",
                    row.name, row.n, gates, ideal, sabre_cycles,
                    zul_cycles, ours_res.cycles, s_sab, s_zul,
                    verified ? "" : "  VERIFY-FAIL");
        std::fflush(stdout);
        bench::recordSearchStats("table3_heuristic", ours_res.stats);
    }

    std::printf("\ngeomean speedup over SABRE:    %.2fx  (paper: "
                "1.23x)\n",
                vs_sabre.value());
    std::printf("geomean speedup over Zulehner: %.2fx  (paper: "
                "1.18x)\n",
                vs_zul.value());
    return 0;
}
