/**
 * @file
 * google-benchmark suite for the parallel layer: the thread pool's
 * dispatch overhead, the portfolio race against its best single
 * entry (BM_PortfolioSpeedup), and batch mapping throughput at
 * --jobs 1/2/4/8.
 *
 * Wall-clock speedups here scale with the host's core count; the
 * committed BENCH_4.json numbers were produced on the repo's bench
 * container and EXPERIMENTS.md records its `nproc`.  On a 1-core
 * host the parallel configurations measure the scheduling overhead
 * (expect ~1x, not the multi-core speedup).
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <functional>
#include <vector>

#include "arch/architectures.hpp"
#include "bench_util.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "parallel/batch.hpp"
#include "parallel/portfolio.hpp"
#include "parallel/thread_pool.hpp"
#include "toqm/mapper.hpp"

namespace {

using namespace toqm;

core::MapperConfig
qftBase()
{
    core::MapperConfig base;
    base.latency = ir::LatencyModel::qftPreset();
    return base;
}

void
BM_ThreadPoolDispatch(benchmark::State &state)
{
    parallel::ThreadPool pool(
        static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        std::atomic<int> count{0};
        for (int i = 0; i < 256; ++i)
            pool.submit([&count] {
                count.fetch_add(1, std::memory_order_relaxed);
            });
        pool.wait();
        benchmark::DoNotOptimize(count.load());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_ThreadPoolDispatch)->Arg(1)->Arg(4);

/** The best single portfolio entry, run alone (the baseline the
 *  race must beat on a multi-core host). */
void
BM_PortfolioSingleEntry(benchmark::State &state)
{
    const auto graph = arch::lnn(6);
    const ir::Circuit logical = ir::qftSkeleton(6);
    core::OptimalMapper mapper(graph, qftBase());
    for (auto _ : state) {
        const auto res = mapper.map(logical);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_PortfolioSingleEntry)->Unit(benchmark::kMillisecond);

/** The full 4-entry race on the same instance.  Speedup =
 *  BM_PortfolioSingleEntry / BM_PortfolioSpeedup. */
void
BM_PortfolioSpeedup(benchmark::State &state)
{
    const auto graph = arch::lnn(6);
    const ir::Circuit logical = ir::qftSkeleton(6);
    parallel::PortfolioMapper mapper(graph,
                                     parallel::defaultPortfolio(
                                         qftBase()));
    search::SearchStats last;
    for (auto _ : state) {
        const auto res = mapper.map(logical);
        benchmark::DoNotOptimize(res.cycles);
        last = res.stats;
    }
    bench::recordSearchStats("portfolio_qft6_lnn", last);
}
BENCHMARK(BM_PortfolioSpeedup)->Unit(benchmark::kMillisecond);

/**
 * Batch throughput: map a fixed set of 8 circuits with the
 * heuristic mapper on jobs = 1/2/4/8 workers, the same shape
 * `toqm_map --jobs N` runs.  items/s is circuits per second.
 */
void
BM_BatchThroughput(benchmark::State &state)
{
    const auto graph = arch::ibmQ20Tokyo();
    std::vector<ir::Circuit> circuits;
    for (int i = 0; i < 8; ++i)
        circuits.push_back(
            ir::randomCircuit(10, 120, 0.5, 7 + i));
    heuristic::HeuristicConfig hcfg;
    hcfg.latency = ir::LatencyModel::qftPreset();

    const unsigned jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        parallel::ThreadPool pool(jobs);
        std::vector<std::function<int()>> tasks;
        tasks.reserve(circuits.size());
        for (const ir::Circuit &c : circuits) {
            tasks.push_back([&graph, &hcfg, &c]() -> int {
                heuristic::HeuristicMapper mapper(graph, hcfg);
                const auto res = mapper.map(c);
                return res.success ? res.cycles : -1;
            });
        }
        const std::vector<int> codes =
            parallel::runBatch(pool, tasks);
        benchmark::DoNotOptimize(codes.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(circuits.size()));
}
BENCHMARK(BM_BatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

/** The incumbent watermark read that sits on the exact search's
 *  expansion hot path: one relaxed load. */
void
BM_IncumbentBoundRead(benchmark::State &state)
{
    search::IncumbentChannel channel;
    channel.offer(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(channel.bound());
}
BENCHMARK(BM_IncumbentBoundRead);

} // namespace

BENCHMARK_MAIN();
