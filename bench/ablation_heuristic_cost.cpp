/**
 * @file
 * Fig 8 and Fig 9 as executable artifacts: the admissible cost
 * function's slack-aware swap-split (Section 5.1).
 *
 * Prints the exact t_min computation for the paper's Fig 8 example
 * (node F costs 8) and quantifies the Fig 9 "common fallacy": the
 * naive meet-in-the-middle estimate versus the slack-aware split,
 * and what each would do to the A* search (a non-admissible
 * midpoint bound can misguide; the slack-aware one is provably a
 * lower bound).
 */

#include <algorithm>
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_util.hpp"
#include "ir/generators.hpp"
#include "ir/mapped_circuit.hpp"
#include "toqm/cost_estimator.hpp"
#include "toqm/mapper.hpp"
#include "toqm/search_types.hpp"

namespace {

using namespace toqm;

/** The Fig 9 scenario: work cycles on qubit A, distance d apart. */
int
midpointEstimate(int d, int u, int swap_len)
{
    // "Meet in the middle": ceil((d-1)/2) swaps per side, ignoring
    // slack entirely.
    const int per_side = (d - 1 + 1) / 2;
    return u + per_side * swap_len;
}

int
slackAwareEstimate(int d, int u, int t_a, int t_b, int swap_len)
{
    int best = 1 << 30;
    for (int r = 0; r <= d - 1; ++r) {
        const int s = d - 1 - r;
        const int delay_a = std::max(r * swap_len - (u - t_a), 0);
        const int delay_b = std::max(s * swap_len - (u - t_b), 0);
        best = std::min(best, std::max(delay_a, delay_b));
    }
    return u + best;
}

} // namespace

int
main()
{
    bench::banner("Ablation: the admissible cost function (Fig 8 / "
                  "Fig 9)");

    // --- Fig 8: node F costs exactly 8 --------------------------
    {
        ir::Circuit c(5);
        c.add(ir::Gate(ir::GateKind::H, 0)); // g1
        c.add(ir::Gate(ir::GateKind::T, 0)); // g2
        c.addCX(1, 2);                       // g3
        c.addCX(1, 2);                       // g4
        c.addCX(1, 4);                       // g5
        c.addCX(0, 1);                       // g6
        const auto g = arch::lnn(5);
        const ir::LatencyModel lat(1, 1, 3);
        core::SearchContext ctx(c, g, lat);
        core::CostEstimator est(ctx);
        core::NodePool pool(ctx);
        auto root = pool.root(ir::identityLayout(5), false);
        auto node_f = pool.expand(
            root, 1, {core::Action{0, 0, -1}, core::Action{-1, 3, 4}});
        const int h = est.estimate(*node_f);
        std::printf("Fig 8 node F: g=%d, h=%d, f=%d  (paper: f=8)\n",
                    node_f->costG, h, node_f->costG + h);
    }

    // --- Fig 9: slack-aware vs midpoint --------------------------
    {
        // distance 5, swap 2 cycles, 4 cycles of work on qubit A.
        const int d = 5, swap_len = 2, u = 4, t_a = 4, t_b = 0;
        const int naive = midpointEstimate(d, u, swap_len);
        const int aware = slackAwareEstimate(d, u, t_a, t_b, swap_len);
        std::printf("\nFig 9 (d=%d, swap=%d, %d busy cycles on one "
                    "side):\n",
                    d, swap_len, u);
        std::printf("  meet-in-the-middle estimate: start at %d "
                    "(paper: 8-cycle critical path)\n",
                    naive);
        std::printf("  slack-aware (r,s) split:     start at %d "
                    "(paper: 6-cycle critical path)\n",
                    aware);
        std::printf("  -> the midpoint bound OVERestimates by %d "
                    "cycles and would not be admissible.\n",
                    naive - aware);
    }

    // --- effect on the search: full h vs a crippled h -----------
    {
        std::printf("\nsearch effort with the full h versus h "
                    "truncated to a %d-gate window:\n",
                    3);
        const ir::Circuit c = ir::qftSkeleton(6);
        const auto g = arch::lnn(6);
        for (int horizon : {-1, 10, 3}) {
            core::MapperConfig cfg;
            cfg.latency = ir::LatencyModel::qftPreset();
            cfg.horizonGates = horizon;
            core::OptimalMapper mapper(g, cfg);
            const auto res = mapper.map(c);
            std::printf("  horizon=%3d: cycles=%d expanded=%llu "
                        "time=%.2fs\n",
                        horizon, res.cycles,
                        static_cast<unsigned long long>(
                            res.stats.expanded),
                        res.stats.seconds);
        }
        std::printf("  (same optimum — a weaker-but-admissible h "
                    "only costs search effort)\n");
    }
    return 0;
}
