/**
 * @file
 * Table 1: time-optimal analysis of the Wille et al. benchmark suite
 * on IBM QX2, with swap latency 6 and CX latency 2.
 *
 * Both the initial mapping and the transformed circuit are solved
 * optimally (the paper's mode 2).  The circuits are deterministic
 * stand-ins with each benchmark's published qubit and gate counts
 * (DESIGN.md, substitutions); the columns reproduced are the paper's:
 * ideal cycles, optimal cycles, and mapper overhead in seconds.
 */

#include <algorithm>
#include <cstdio>

#include "arch/architectures.hpp"
#include "bench_util.hpp"
#include "ir/generators.hpp"
#include "ir/schedule.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace {

struct Row
{
    const char *name;
    int n;
    int gates;
    int paperIdeal;
    int paperOptimal;
};

/** The 23 benchmarks of the paper's Table 1. */
constexpr Row rows[] = {
    {"3_17_13", 3, 36, 39, 39},
    {"4gt11_82", 5, 27, 38, 40},
    {"4gt11_84", 5, 18, 19, 19},
    {"4gt13_92", 5, 66, 64, 64},
    {"4mod5-v0_19", 5, 35, 37, 45},
    {"4mod5-v0_20", 5, 20, 21, 27},
    {"4mod5-v1_22", 5, 21, 22, 28},
    {"4mod5-v1_24", 5, 36, 36, 42},
    {"alu-v0_27", 5, 36, 35, 40},
    {"alu-v1_28", 5, 37, 37, 42},
    {"alu-v1_29", 5, 37, 36, 41},
    {"alu-v2_33", 5, 37, 36, 41},
    {"alu-v3_34", 5, 52, 53, 59},
    {"alu-v3_35", 5, 37, 37, 42},
    {"alu-v4_37", 5, 37, 37, 42},
    {"ex-1_166", 3, 19, 21, 21},
    {"ham3_102", 3, 20, 24, 24},
    {"miller_11", 3, 50, 52, 52},
    {"mod5d1_63", 5, 22, 24, 34},
    {"mod5mils_65", 5, 35, 37, 46},
    {"qft_4", 4, 6, 10, 16},
    {"rd32-v0_66", 4, 34, 36, 41},
    {"rd32-v1_68", 4, 36, 36, 41},
};

} // namespace

int
main()
{
    using namespace toqm;
    bench::banner("Table 1: optimal mapping of Wille benchmarks on "
                  "IBM QX2 (1q=1, CX=2, SWAP=6)");
    std::printf("%-14s %2s %5s | %6s %8s %9s | %11s %11s\n", "name",
                "n", "gates", "ideal", "optimal", "overhead",
                "paper-ideal", "paper-opt");

    const auto device = arch::ibmQX2();
    core::MapperConfig config;
    config.latency = ir::LatencyModel::ibmPreset();
    config.searchInitialMapping = true;
    config.maxExpandedNodes =
        bench::fullMode() ? 50'000'000 : 5'000'000;

    double total_overhead = 0.0;
    search::SearchStats aggregate;
    for (const Row &row : rows) {
        const ir::Circuit circuit =
            ir::benchmarkStandIn(row.name, row.n, row.gates);
        const int ideal = ir::idealCycles(circuit, config.latency);

        core::OptimalMapper mapper(device, config);
        const auto res = mapper.map(circuit);
        total_overhead += res.stats.seconds;
        aggregate.expanded += res.stats.expanded;
        aggregate.generated += res.stats.generated;
        aggregate.filtered += res.stats.filtered;
        aggregate.maxQueueSize =
            std::max(aggregate.maxQueueSize, res.stats.maxQueueSize);
        aggregate.peakPoolBytes =
            std::max(aggregate.peakPoolBytes, res.stats.peakPoolBytes);
        aggregate.seconds += res.stats.seconds;

        if (!res.success) {
            std::printf("%-14s %2d %5d | %6d %8s %9.3f | %11d %11d\n",
                        row.name, row.n, row.gates, ideal, "budget",
                        res.stats.seconds, row.paperIdeal,
                        row.paperOptimal);
            continue;
        }
        const auto verdict =
            sim::verifyMapping(circuit, res.mapped, device);
        std::printf("%-14s %2d %5d | %6d %8d %8.3fs | %11d %11d%s\n",
                    row.name, row.n, row.gates, ideal, res.cycles,
                    res.stats.seconds, row.paperIdeal,
                    row.paperOptimal,
                    verdict.ok ? "" : "  VERIFY-FAIL");
    }
    std::printf("\ntotal mapper overhead: %.2f s  (paper: ~1.2 s on "
                "a 2013 Xeon; circuits are synthetic stand-ins, see "
                "DESIGN.md)\n",
                total_overhead);
    bench::printSearchStats("table1 aggregate", aggregate);
    std::printf("shape check: optimal >= ideal on every row, with "
                "small gaps, and mostly sub-second solves.\n");
    return 0;
}
