/**
 * @file
 * google-benchmark microbenchmarks for the substrate components:
 * QASM parsing, statevector simulation, the admissible cost
 * estimator, node expansion, and the end-to-end mappers on a small
 * fixed workload.  These guard against performance regressions in
 * the pieces that dominate the tables' "overhead" columns.
 */

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "fault/fault.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/generators.hpp"
#include "ir/mapped_circuit.hpp"
#include "obs/observer.hpp"
#include "obs/search_probe.hpp"
#include "qasm/importer.hpp"
#include "qasm/writer.hpp"
#include "sim/stabilizer.hpp"
#include "sim/statevector.hpp"
#include "toqm/cost_estimator.hpp"
#include "toqm/expander.hpp"
#include "toqm/filter.hpp"
#include "toqm/mapper.hpp"

namespace {

using namespace toqm;

void
BM_QasmParseAndLower(benchmark::State &state)
{
    const std::string source =
        qasm::writeCircuit(ir::randomCircuit(8, 400, 0.45, 5));
    for (auto _ : state) {
        auto result = qasm::importString(source);
        benchmark::DoNotOptimize(result.circuit.size());
    }
}
BENCHMARK(BM_QasmParseAndLower);

void
BM_StateVectorQft(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const ir::Circuit qft = ir::qftConcrete(n);
    for (auto _ : state) {
        sim::StateVector sv(n);
        sv.run(qft);
        benchmark::DoNotOptimize(sv.amplitude(0));
    }
}
BENCHMARK(BM_StateVectorQft)->Arg(8)->Arg(12);

void
BM_CostEstimator(benchmark::State &state)
{
    const ir::Circuit c = ir::qftSkeleton(8);
    const auto g = arch::grid(2, 4);
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    core::SearchContext ctx(c, g, lat);
    core::CostEstimator est(ctx);
    core::NodePool pool(ctx);
    auto root = pool.root(ir::identityLayout(8), false);
    for (auto _ : state)
        benchmark::DoNotOptimize(est.estimate(*root));
}
BENCHMARK(BM_CostEstimator);

void
BM_NodeExpansion(benchmark::State &state)
{
    const ir::Circuit c = ir::qftSkeleton(8);
    const auto g = arch::grid(2, 4);
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    core::SearchContext ctx(c, g, lat);
    core::NodePool pool(ctx);
    core::Expander expander(ctx, pool);
    auto root = pool.root(ir::identityLayout(8), false);
    for (auto _ : state) {
        auto expansion = expander.expand(root);
        benchmark::DoNotOptimize(expansion.children.size());
    }
}
BENCHMARK(BM_NodeExpansion);

/**
 * Shared fixture for the filter benchmarks: a realistic node stream
 * (two BFS levels of the qft-8 / 2x4-grid search) admitted into the
 * open-addressing dominance filter.
 */
struct FilterBenchFixture
{
    ir::Circuit circuit = ir::qftSkeleton(8);
    arch::CouplingGraph graph = arch::grid(2, 4);
    ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    core::SearchContext ctx{circuit, graph, lat};
    core::NodePool pool{ctx};
    core::Expander expander{ctx, pool};
    std::vector<core::NodeRef> nodes;

    FilterBenchFixture()
    {
        auto root = pool.root(ir::identityLayout(8), false);
        nodes.push_back(root);
        auto level1 = expander.expand(root).children;
        nodes.insert(nodes.end(), level1.begin(), level1.end());
        // One more level from the first few children: mixes fresh
        // mappings with duplicates of level-1 mappings, so admits
        // exercise both the miss and the dominance-compare paths.
        for (size_t i = 0; i < level1.size() && nodes.size() < 600;
             ++i) {
            auto level2 = expander.expand(level1[i]).children;
            nodes.insert(nodes.end(), level2.begin(), level2.end());
        }
    }
};

/** Admit throughput: table build-up, dominance kills, rehashes. */
void
BM_FilterAdmit(benchmark::State &state)
{
    FilterBenchFixture fx;
    for (auto _ : state) {
        core::Filter filter;
        for (const auto &n : fx.nodes)
            benchmark::DoNotOptimize(filter.admit(n));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(fx.nodes.size()));
}
BENCHMARK(BM_FilterAdmit);

/**
 * Lookup throughput: the table is pre-populated, and every admitted
 * node is an exact duplicate of a recorded one, so each call is a
 * probe + dominance compare + drop with no table mutation.
 */
void
BM_FilterLookup(benchmark::State &state)
{
    FilterBenchFixture fx;
    core::Filter filter;
    for (const auto &n : fx.nodes)
        filter.admit(n);
    for (auto _ : state) {
        for (const auto &n : fx.nodes)
            benchmark::DoNotOptimize(filter.admit(n));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(fx.nodes.size()));
}
BENCHMARK(BM_FilterLookup);

/**
 * h(v) on a mid-search node: several gates already scheduled, so the
 * production scan starts at firstUnscheduled instead of rescanning
 * the scheduled prefix (BM_CostEstimator covers the root-node case).
 */
void
BM_IncrementalH(benchmark::State &state)
{
    const ir::Circuit c = ir::qftSkeleton(8);
    const auto g = arch::grid(2, 4);
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    core::SearchContext ctx(c, g, lat);
    core::CostEstimator est(ctx);
    est.setAuditInterval(0); // time the fast path, not the oracle
    core::NodePool pool(ctx);
    core::Expander expander(ctx, pool);
    auto node = pool.root(ir::identityLayout(8), false);
    // Walk down a gate-scheduling path to accumulate a scheduled
    // prefix (children are gates-first, so front() schedules when a
    // gate is ready).
    for (int depth = 0; depth < 12; ++depth) {
        auto children = expander.expand(node).children;
        if (children.empty())
            break;
        core::NodeRef next = children.front();
        for (const auto &ch : children) {
            if (ch->scheduledGates > next->scheduledGates)
                next = ch;
        }
        node = next;
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(est.estimate(*node));
}
BENCHMARK(BM_IncrementalH);

/**
 * Replica of the pre-pool node representation: every clone paid one
 * shared_ptr control-block allocation plus a separate heap
 * allocation for the per-qubit arrays.  Kept as the baseline side of
 * the node-generation throughput comparison below.
 */
struct SharedPtrNode
{
    using Ptr = std::shared_ptr<SharedPtrNode>;

    Ptr parent;
    int cycle = 0;
    int costG = 0;
    int costH = 0;
    int routeScore = 0;
    std::vector<core::Action> actions;
    int scheduledGates = 0;
    long busySum = 0;
    std::unique_ptr<int[]> buf;
    int bufInts;

    explicit SharedPtrNode(int buf_ints)
        : buf(new int[static_cast<size_t>(buf_ints)]),
          bufInts(buf_ints)
    {
        std::memset(buf.get(), 0,
                    static_cast<size_t>(buf_ints) * sizeof(int));
    }

    SharedPtrNode(const SharedPtrNode &other)
        : parent(other.parent), cycle(other.cycle),
          costG(other.costG), costH(other.costH),
          routeScore(other.routeScore), actions(other.actions),
          scheduledGates(other.scheduledGates),
          busySum(other.busySum),
          buf(new int[static_cast<size_t>(other.bufInts)]),
          bufInts(other.bufInts)
    {
        std::memcpy(buf.get(), other.buf.get(),
                    static_cast<size_t>(bufInts) * sizeof(int));
    }
};

constexpr int kGenChildren = 64;

void
BM_NodeGenerationSharedPtr(benchmark::State &state)
{
    const int nl = 8, np = 8;
    const int buf_ints = 2 * nl + 3 * np;
    auto root = std::make_shared<SharedPtrNode>(buf_ints);
    const std::vector<core::Action> acts{core::Action{-1, 0, 1}};
    for (auto _ : state) {
        for (int i = 0; i < kGenChildren; ++i) {
            auto child = std::make_shared<SharedPtrNode>(*root);
            child->parent = root;
            child->cycle = i + 1;
            child->actions = acts;
            benchmark::DoNotOptimize(child.get());
        }
    }
    state.SetItemsProcessed(state.iterations() * kGenChildren);
}
BENCHMARK(BM_NodeGenerationSharedPtr);

void
BM_NodeGenerationPooled(benchmark::State &state)
{
    const ir::Circuit c = ir::qftSkeleton(8);
    const auto g = arch::grid(2, 4);
    const ir::LatencyModel lat = ir::LatencyModel::qftPreset();
    core::SearchContext ctx(c, g, lat);
    core::NodePool pool(ctx); // same 2*8 + 3*8 int geometry
    auto root = pool.root(ir::identityLayout(8), false);
    const std::vector<core::Action> acts{core::Action{-1, 0, 1}};
    for (auto _ : state) {
        for (int i = 0; i < kGenChildren; ++i) {
            auto child = pool.expand(root, i + 1, acts);
            benchmark::DoNotOptimize(child.get());
        }
    }
    state.SetItemsProcessed(state.iterations() * kGenChildren);
}
BENCHMARK(BM_NodeGenerationPooled);

/**
 * The two sides of the observability overhead contract.  The
 * baseline loop is the work an expansion site does anyway (bump a
 * counter, track best-f); the probed loop adds the disabled-path
 * `SearchProbe::onExpansion` call.  The contract (see
 * src/obs/observer.hpp) is that the probed side stays within 2% of
 * the baseline: one member test and a predictable branch.
 */
void
BM_ObsProbeBaseline(benchmark::State &state)
{
    std::uint64_t expanded = 0;
    double best_f = 0.0;
    for (auto _ : state) {
        ++expanded;
        best_f += 0.5;
        benchmark::DoNotOptimize(expanded);
        benchmark::DoNotOptimize(best_f);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsProbeBaseline);

void
BM_ObsProbeDisabled(benchmark::State &state)
{
    obs::Observer::global().reset(); // every facility off
    obs::SearchProbe probe("bench");
    std::uint64_t expanded = 0;
    double best_f = 0.0;
    for (auto _ : state) {
        ++expanded;
        best_f += 0.5;
        probe.onExpansion(expanded, best_f, 10, 20, 4096);
        benchmark::DoNotOptimize(expanded);
        benchmark::DoNotOptimize(best_f);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsProbeDisabled);

/** The armed cost, for scale: tracing on, default 64-expansion
 *  sampling cadence. */
void
BM_ObsProbeSampling(benchmark::State &state)
{
    obs::Observer::global().reset();
    obs::Observer::global().enableTrace();
    obs::SearchProbe probe("bench");
    std::uint64_t expanded = 0;
    double best_f = 0.0;
    for (auto _ : state) {
        ++expanded;
        best_f += 0.5;
        probe.onExpansion(expanded, best_f, 10, 20, 4096);
        benchmark::DoNotOptimize(expanded);
        benchmark::DoNotOptimize(best_f);
    }
    state.SetItemsProcessed(state.iterations());
    obs::Observer::global().reset();
}
BENCHMARK(BM_ObsProbeSampling);

/**
 * ResourceGuard::poll() on the expansion hot path.  Baseline = the
 * loop with no guard at all; Disarmed = the always-embedded guard a
 * run without --deadline-ms/--max-pool-mb sees (must be within noise
 * of Baseline — that is the "free when off" contract); Armed = a
 * deadline guard at the default 256-expansion probe cadence.
 */
void
BM_GuardPollBaseline(benchmark::State &state)
{
    std::uint64_t expanded = 0;
    for (auto _ : state) {
        ++expanded;
        benchmark::DoNotOptimize(expanded);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardPollBaseline);

void
BM_GuardPollDisarmed(benchmark::State &state)
{
    search::ResourceGuard guard;
    std::uint64_t expanded = 0;
    for (auto _ : state) {
        ++expanded;
        auto stop = guard.poll();
        benchmark::DoNotOptimize(expanded);
        benchmark::DoNotOptimize(stop);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardPollDisarmed);

void
BM_GuardPollArmed(benchmark::State &state)
{
    search::GuardConfig config;
    config.deadlineMs = 3'600'000; // never trips within the run
    search::ResourceGuard guard(config, nullptr);
    std::uint64_t expanded = 0;
    for (auto _ : state) {
        ++expanded;
        auto stop = guard.poll();
        benchmark::DoNotOptimize(expanded);
        benchmark::DoNotOptimize(stop);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GuardPollArmed);

/**
 * TOQM_FAULT_POINT on a hot path.  In a default build the hook is
 * `((void)0)` and this loop must be byte-identical to Baseline; in a
 * fault-injection build with no plan armed (the shipping default for
 * that configuration too) the hook is one relaxed atomic load and a
 * not-taken branch, which must stay within noise of Baseline — that
 * is the "disarmed hooks are free" contract DESIGN.md §4.6 claims.
 */
void
BM_FaultPointDisarmed(benchmark::State &state)
{
    std::uint64_t work = 0;
    for (auto _ : state) {
        TOQM_FAULT_POINT(PoolAlloc);
        ++work;
        benchmark::DoNotOptimize(work);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultPointDisarmed);

void
BM_OptimalMapperQft5Lnn(benchmark::State &state)
{
    const ir::Circuit c = ir::qftSkeleton(5);
    const auto g = arch::lnn(5);
    core::MapperConfig cfg;
    cfg.latency = ir::LatencyModel::qftPreset();
    for (auto _ : state) {
        core::OptimalMapper mapper(g, cfg);
        benchmark::DoNotOptimize(mapper.map(c).cycles);
    }
}
BENCHMARK(BM_OptimalMapperQft5Lnn)->Unit(benchmark::kMillisecond);

void
BM_HeuristicMapperTokyo(benchmark::State &state)
{
    const ir::Circuit c =
        ir::benchmarkStandIn("micro", 10, 500);
    const auto g = arch::ibmQ20Tokyo();
    for (auto _ : state) {
        heuristic::HeuristicMapper mapper(g);
        benchmark::DoNotOptimize(mapper.map(c).cycles);
    }
}
BENCHMARK(BM_HeuristicMapperTokyo)->Unit(benchmark::kMillisecond);

void
BM_SabreTokyo(benchmark::State &state)
{
    const ir::Circuit c =
        ir::benchmarkStandIn("micro", 10, 500);
    const auto g = arch::ibmQ20Tokyo();
    for (auto _ : state) {
        baselines::SabreMapper mapper(g);
        benchmark::DoNotOptimize(mapper.map(c).swapCount);
    }
}
BENCHMARK(BM_SabreTokyo)->Unit(benchmark::kMillisecond);

void
BM_StabilizerCliffordVerification(benchmark::State &state)
{
    const auto g = arch::ibmQ20Tokyo();
    const ir::Circuit c =
        sim::randomCliffordCircuit(12, 800, 0.45, 3, 0.5);
    heuristic::HeuristicMapper mapper(g);
    const auto res = mapper.map(c);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sim::cliffordEquivalent(c, res.mapped, 1));
    }
}
BENCHMARK(BM_StabilizerCliffordVerification)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
