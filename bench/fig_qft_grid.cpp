/**
 * @file
 * Figures 12, 14 and 15: time-optimal QFT on the 2xN grid.
 *
 * Default run: exact A* for QFT-6 on 2x3 in both modes (mixed GT+swap
 * and the Fig 14 constrained mode), cross-checked against the
 * generalized patterns; the QFT-8/2x4 searches of the paper (17 and
 * 19 cycles, < 30 s and minutes respectively) run in full mode.
 * The structured 17-step QFT-8 schedule itself (Fig 12) is generated
 * and printed in every mode.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "arch/architectures.hpp"
#include "bench_util.hpp"
#include "ir/generators.hpp"
#include "qftopt/qft_patterns.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"

namespace {

using namespace toqm;

void
searchAndCompare(int n, bool allow_mixing)
{
    const ir::Circuit qft = ir::qftSkeleton(n);
    const auto pattern = allow_mixing
                             ? qftopt::qftGrid2xnMixed(n)
                             : qftopt::qftGrid2xnUnmixed(n);
    core::MapperConfig config;
    config.latency = ir::LatencyModel::qftPreset();
    config.allowConcurrentSwapAndGate = allow_mixing;
    core::OptimalMapper mapper(pattern.graph, config);
    const auto res = mapper.map(qft, pattern.initialLayout);
    std::printf("qft-%d on 2x%d %-12s: A* = %2d cycles (%llu nodes, "
                "%.2f s); closed form = %2d%s\n",
                n, n / 2, allow_mixing ? "(mixed)" : "(constrained)",
                res.cycles,
                static_cast<unsigned long long>(res.stats.expanded),
                res.stats.seconds, pattern.depth(),
                res.cycles == pattern.depth() ? "" : "  MISMATCH");
    std::fflush(stdout);
}

} // namespace

int
main()
{
    bench::banner("Fig 12/14/15: optimal QFT on 2xN grids (GT=1, "
                  "SWAP=1)");

    searchAndCompare(6, true);
    searchAndCompare(6, false);
    if (bench::fullMode()) {
        searchAndCompare(8, true);  // paper: 17 cycles, < 30 s
        searchAndCompare(8, false); // paper: 19 cycles (Fig 14)
    } else {
        std::printf("qft-8 exact searches skipped in quick mode "
                    "(TOQM_BENCH_FULL=1 reproduces 17/19 cycles "
                    "by search; the patterns below certify them "
                    "by construction)\n");
    }

    std::printf("\nstructured schedules for QFT-8 (validated):\n");
    {
        const auto mixed = qftopt::qftGrid2xnMixed(8);
        const auto c1 = qftopt::validateQftSolution(mixed, 8);
        std::printf("  Fig 12 mixed:       %2d steps  %s\n",
                    mixed.depth(), c1.message.c_str());
        const auto unmixed = qftopt::qftGrid2xnUnmixed(8);
        const auto c2 =
            qftopt::validateQftSolution(unmixed, 8, true);
        std::printf("  Fig 14 constrained: %2d steps  %s\n",
                    unmixed.depth(), c2.message.c_str());
        const auto verdict = sim::verifyMapping(
            ir::qftSkeleton(8), mixed.toMappedCircuit(), mixed.graph);
        std::printf("  structural verification (mixed): %s\n",
                    verdict.message.c_str());

        std::printf("\nFig 12 reproduction, step by step "
                    "(column-major start, 17 steps):\n");
        std::cout << mixed.renderSteps();
    }
    return 0;
}
