/**
 * @file
 * Extension experiment: QUEKO depth ratios.
 *
 * QUEKO benchmarks (Tan & Cong, used in the paper's Table 2) have a
 * known optimal depth by construction, so "mapped depth / optimal
 * depth" is an absolute quality score rather than a relative one.
 * This bench scores the practical mapper and both baselines on
 * QUEKO-style circuits over three devices — the standard way to
 * quantify how far heuristic mappers sit from optimal (published
 * evaluations report 1.5x-5x for mappers of this class; anything
 * near 1x on the hard instances is exceptional).
 */

#include <cstdio>

#include "arch/architectures.hpp"
#include "baselines/sabre.hpp"
#include "baselines/zulehner.hpp"
#include "bench_util.hpp"
#include "heuristic/heuristic_mapper.hpp"
#include "ir/queko.hpp"
#include "ir/schedule.hpp"

int
main()
{
    using namespace toqm;
    bench::banner("Extension: QUEKO depth ratios (mapped depth / "
                  "known optimum; unit latency, swap=3)");

    const ir::LatencyModel latency = ir::LatencyModel::olsqPreset();
    std::printf("%-10s %6s %7s | %7s %7s %9s\n", "arch", "depth",
                "gates", "ours", "sabre", "zulehner");

    bench::GeoMean ours_ratio, sabre_ratio, zul_ratio;
    for (const char *arch_name : {"grid2by4", "aspen-4", "tokyo"}) {
        const auto device = arch::byName(arch_name);
        for (int depth : {10, 20, 40}) {
            const auto bench_case = ir::quekoCircuit(
                device.numQubits(), device.edges(), depth, 0.4, 0.2,
                static_cast<std::uint64_t>(depth) * 1337);

            baselines::SabreMapper sabre(device);
            const auto rs = sabre.map(bench_case.circuit);
            const int sabre_cycles =
                ir::scheduleAsap(rs.mapped.physical, latency)
                    .makespan;

            baselines::ZulehnerMapper zul(device);
            const auto rz = zul.map(bench_case.circuit);
            const int zul_cycles =
                ir::scheduleAsap(rz.mapped.physical, latency)
                    .makespan;

            // Re-map ours under the same unit latency model.
            heuristic::HeuristicConfig cfg;
            cfg.latency = latency;
            heuristic::HeuristicMapper ours_unit(device, cfg);
            const auto ru = ours_unit.map(bench_case.circuit);

            const double r_ours =
                static_cast<double>(ru.cycles) /
                bench_case.optimalDepth;
            const double r_sabre =
                static_cast<double>(sabre_cycles) /
                bench_case.optimalDepth;
            const double r_zul =
                static_cast<double>(zul_cycles) /
                bench_case.optimalDepth;
            ours_ratio.add(r_ours);
            sabre_ratio.add(r_sabre);
            zul_ratio.add(r_zul);
            std::printf("%-10s %6d %7d | %6.2fx %6.2fx %8.2fx\n",
                        arch_name, depth, bench_case.circuit.size(),
                        r_ours, r_sabre, r_zul);
            std::fflush(stdout);
        }
    }
    std::printf("\ngeomean depth ratio: ours %.2fx, sabre %.2fx, "
                "zulehner %.2fx (1.00x == provably optimal)\n",
                ours_ratio.value(), sabre_ratio.value(),
                zul_ratio.value());
    std::printf("note: QUEKO instances are adversarially scrambled; "
                "all heuristic mappers sit well above 1x here, and "
                "SABRE's swap-count objective is competitive on them "
                "— the TIME advantage of our mapper (Table 3) shows "
                "on workloads with latency diversity, not on "
                "unit-latency QUEKO.\n");
    return 0;
}
