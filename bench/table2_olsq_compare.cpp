/**
 * @file
 * Table 2: our optimal depths and overheads versus a slow optimal
 * comparator, under the OLSQ setup (every gate 1 cycle, swap 3).
 *
 * OLSQ itself is an SMT-based tool we cannot run offline; its role
 * in the table — "a much slower solver certifying the same optimal
 * depth" — is played by the de-optimized exhaustive reference
 * (baselines::exhaustiveReference; DESIGN.md, substitutions).
 * The QUEKO rows use our QUEKO-style generator, whose optimal depth
 * is known by construction, giving the same ground truth the paper
 * gets from the QUEKO suite.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "arch/architectures.hpp"
#include "baselines/exhaustive.hpp"
#include "bench_util.hpp"
#include "ir/generators.hpp"
#include "ir/queko.hpp"
#include "ir/schedule.hpp"
#include "sim/verifier.hpp"
#include "toqm/mapper.hpp"
#include "toqm/static_mapping.hpp"

namespace {

using namespace toqm;

struct Outcome
{
    int cycles = -1;
    double seconds = 0.0;
    bool ok = false;
};

/** The paper's Table 2 protocol: try a swap-free static embedding
 *  first; fall back to the initial-mapping search. */
Outcome
mapOurs(const arch::CouplingGraph &device, const ir::Circuit &circuit,
        std::uint64_t budget)
{
    Outcome out;
    core::MapperConfig config;
    config.latency = ir::LatencyModel::olsqPreset();
    config.maxExpandedNodes = budget;

    const auto t0 = std::chrono::steady_clock::now();
    const auto static_layout = core::findStaticMapping(circuit, device);
    double static_seconds =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();

    if (static_layout) {
        core::OptimalMapper mapper(device, config);
        const auto res = mapper.map(circuit, *static_layout);
        out.cycles = res.cycles;
        out.seconds = static_seconds + res.stats.seconds;
        out.ok = res.success &&
                 sim::verifyMapping(circuit, res.mapped, device).ok;
        bench::recordSearchStats("table2_ours", res.stats);
        return out;
    }
    config.searchInitialMapping = true;
    core::OptimalMapper mapper(device, config);
    const auto res = mapper.map(circuit);
    out.cycles = res.cycles;
    out.seconds = static_seconds + res.stats.seconds;
    out.ok = res.success &&
             sim::verifyMapping(circuit, res.mapped, device).ok;
    bench::recordSearchStats("table2_ours", res.stats);
    return out;
}

void
printRow(const std::string &name, const std::string &arch_name,
         int ideal, const Outcome &slow, const Outcome &ours,
         int known_optimal = -1)
{
    std::printf("%-14s %-9s %6d | ", name.c_str(), arch_name.c_str(),
                ideal);
    if (slow.ok)
        std::printf("%6d %9.3fs | ", slow.cycles, slow.seconds);
    else
        std::printf("%6s %9s  | ", "-", "budget");
    std::printf("%6d %9.3fs | ", ours.cycles, ours.seconds);
    if (slow.ok) {
        std::printf("%6.1fx", std::max(slow.seconds, 1e-3) /
                                  std::max(ours.seconds, 1e-3));
    } else {
        std::printf("%7s", ">budget");
    }
    if (slow.ok && slow.cycles != ours.cycles)
        std::printf("  DEPTH-MISMATCH");
    if (known_optimal >= 0 && ours.cycles != known_optimal)
        std::printf("  (known optimum %d!)", known_optimal);
    std::printf("%s\n", ours.ok ? "" : "  VERIFY-FAIL");
}

} // namespace

int
main()
{
    bench::banner("Table 2: optimal depth vs a slow optimal "
                  "comparator (all gates 1 cycle, swap 3)");
    std::printf("%-14s %-9s %6s | %6s %10s | %6s %10s | %8s\n",
                "name", "arch", "ideal", "slow", "overhead", "ours",
                "overhead", "speedup");

    const std::uint64_t ours_budget =
        bench::fullMode() ? 50'000'000 : 10'000'000;
    const std::uint64_t slow_budget =
        bench::fullMode() ? 20'000'000 : 3'000'000;
    const auto latency = ir::LatencyModel::olsqPreset();

    struct Bench
    {
        const char *name;
        const char *arch;
        int n;
        int gates;
    };
    // Small-circuit rows of the paper's Table 2 (stand-ins sized to
    // the published benchmarks).
    const Bench benches[] = {
        {"4gt13_92", "ibmqx2", 5, 66},   {"4mod5-v1_22", "grid2by3", 5, 21},
        {"4mod5-v1_22", "grid2by4", 5, 21}, {"4mod5-v1_22", "ibmqx2", 5, 21},
        {"adder", "grid2by3", 4, 23},    {"adder", "grid2by4", 4, 23},
        {"adder", "ibmqx2", 4, 23},      {"mod5mils_65", "ibmqx2", 5, 35},
        {"or", "ibmqx2", 3, 8},          {"qaoa5", "ibmqx2", 5, 14},
    };
    for (const Bench &b : benches) {
        const auto device = arch::byName(b.arch);
        const ir::Circuit circuit =
            ir::benchmarkStandIn(b.name, b.n, b.gates);
        const int ideal = ir::idealCycles(circuit, latency);

        const auto slow_res = baselines::exhaustiveReference(
            device, circuit, latency, true, slow_budget);
        Outcome slow;
        slow.ok = slow_res.success;
        slow.cycles = slow_res.cycles;
        slow.seconds = slow_res.stats.seconds;

        const Outcome ours = mapOurs(device, circuit, ours_budget);
        printRow(b.name, b.arch, ideal, slow, ours);
    }

    // QUEKO rows: ground-truth optimal depth by construction.
    const auto aspen = arch::aspen4();
    for (int depth : {5, 10, 15}) {
        const auto bench = ir::quekoCircuit(
            aspen.numQubits(), aspen.edges(), depth, 0.35, 0.15,
            static_cast<std::uint64_t>(depth) * 31);
        const int ideal = ir::idealCycles(bench.circuit, latency);

        // The slow comparator is hopeless on 16 qubits; the QUEKO
        // construction itself certifies the optimum (DESIGN.md).
        Outcome slow; // reported as '-' (budget)
        const Outcome ours = mapOurs(aspen, bench.circuit,
                                     ours_budget);
        printRow("queko_" + std::to_string(depth), "aspen-4", ideal,
                 slow, ours, bench.optimalDepth);
    }

    std::printf("\nshape check: identical depths, with our "
                "framework orders of magnitude faster than the "
                "de-optimized reference.\n");
    return 0;
}
