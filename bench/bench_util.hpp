/**
 * @file
 * Shared helpers for the benchmark harness: aligned table printing
 * and the full/quick mode switch.
 *
 * Every bench binary prints the rows of one paper table or figure.
 * By default sizes are trimmed so the whole harness finishes in
 * minutes; set TOQM_BENCH_FULL=1 for the paper-scale runs.
 */

#ifndef TOQM_BENCH_BENCH_UTIL_HPP
#define TOQM_BENCH_BENCH_UTIL_HPP

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/metrics.hpp"
#include "search/search_stats.hpp"

namespace toqm::bench {

/** True when TOQM_BENCH_FULL=1 requests paper-scale sizes. */
inline bool
fullMode()
{
    const char *env = std::getenv("TOQM_BENCH_FULL");
    return env != nullptr && std::string(env) == "1";
}

/** Print a table banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n==== %s ====\n", title.c_str());
    if (!fullMode()) {
        std::printf("(quick mode: set TOQM_BENCH_FULL=1 for "
                    "paper-scale sizes)\n");
    }
}

/**
 * The registry behind the bench harness's machine-readable output.
 * Set TOQM_BENCH_METRICS_JSON=<path> and the accumulated snapshot is
 * written there when the binary exits — the exact MetricsRegistry
 * shape `toqm_map --metrics-json` emits, so one scraper serves both.
 */
inline obs::MetricsRegistry &
benchMetrics()
{
    static obs::MetricsRegistry registry;
    static const bool flusher = [] {
        return std::atexit([] {
                   const char *path =
                       std::getenv("TOQM_BENCH_METRICS_JSON");
                   if (path == nullptr || benchMetrics().empty())
                       return;
                   std::FILE *f = std::fopen(path, "wb");
                   if (f == nullptr)
                       return;
                   const std::string snap =
                       benchMetrics().snapshotJson();
                   std::fwrite(snap.data(), 1, snap.size(), f);
                   std::fputc('\n', f);
                   std::fclose(f);
               }) == 0;
    }();
    (void)flusher;
    return registry;
}

/**
 * Accumulate one mapper run into benchMetrics(), in the same
 * `search.<label>.*` key shape the in-process SearchProbe flushes,
 * so bench artifacts and --metrics-json artifacts diff cleanly.
 */
inline void
recordSearchStats(const char *label, const search::SearchStats &stats)
{
    obs::MetricsRegistry &m = benchMetrics();
    const std::string prefix = std::string("search.") + label;
    m.add(prefix + ".runs", 1);
    m.add(prefix + ".expanded", stats.expanded);
    m.add(prefix + ".generated", stats.generated);
    m.add(prefix + ".filtered", stats.filtered);
    m.setGauge(prefix + ".max_queue",
               static_cast<double>(stats.maxQueueSize));
    m.setGauge(prefix + ".peak_pool_bytes",
               static_cast<double>(stats.peakPoolBytes));
    m.setGauge(prefix + ".seconds", stats.seconds);
}

/**
 * One-line footer for a mapper run's unified search report (every
 * mapper now returns the same search::SearchStats shape).  Also
 * feeds benchMetrics() so the run lands in the JSON artifact.
 */
inline void
printSearchStats(const char *label, const search::SearchStats &stats)
{
    std::printf("  [%s] expanded %llu, generated %llu, filtered %llu, "
                "peak queue %llu, peak pool %.1f MiB, %.3f s\n",
                label,
                static_cast<unsigned long long>(stats.expanded),
                static_cast<unsigned long long>(stats.generated),
                static_cast<unsigned long long>(stats.filtered),
                static_cast<unsigned long long>(stats.maxQueueSize),
                static_cast<double>(stats.peakPoolBytes) /
                    (1024.0 * 1024.0),
                stats.seconds);
    recordSearchStats(label, stats);
}

/** Geometric mean accumulator for speedup summaries. */
class GeoMean
{
  public:
    void
    add(double value)
    {
        _log_sum += std::log(value);
        ++_count;
    }

    double
    value() const
    {
        return _count == 0 ? 1.0 : std::exp(_log_sum / _count);
    }

    int count() const { return _count; }

  private:
    double _log_sum = 0.0;
    int _count = 0;
};

} // namespace toqm::bench

#endif // TOQM_BENCH_BENCH_UTIL_HPP
