/**
 * @file
 * Fig 13 / Section 6.1.1 asymptotics: the generalized QFT schedules
 * scale as the paper claims — 4n + O(1) on LNN, 3n + O(1) on 2xN
 * (matching Maslov's lower bound for the 2D case at the constant
 * component).
 *
 * For every n the generated schedule is re-validated from scratch
 * (adjacency, layer disjointness, exactly-once GT coverage).
 */

#include <cstdio>

#include "bench_util.hpp"
#include "qftopt/qft_patterns.hpp"

int
main()
{
    using namespace toqm;
    bench::banner("Fig 13: generalized QFT schedule depths");

    std::printf("%4s | %10s | %12s | %14s\n", "n", "LNN (4n-7)",
                "2xN (3n-7)", "2xN strict (3n-5)");
    const int max_n = bench::fullMode() ? 256 : 96;
    bool all_valid = true;
    for (int n = 4; n <= max_n; n *= 2) {
        const auto lnn = qftopt::qftLnnButterfly(n);
        const auto mixed = qftopt::qftGrid2xnMixed(n);
        const auto strict = qftopt::qftGrid2xnUnmixed(n);
        const bool valid =
            qftopt::validateQftSolution(lnn, n).ok &&
            qftopt::validateQftSolution(mixed, n).ok &&
            qftopt::validateQftSolution(strict, n, true).ok;
        all_valid &= valid;
        std::printf("%4d | %10d | %12d | %14d %s\n", n, lnn.depth(),
                    mixed.depth(), strict.depth(),
                    valid ? "" : "INVALID");
    }

    std::printf("\nratios depth/n for the largest size (should "
                "approach 4 and 3):\n");
    {
        const int n = max_n;
        std::printf("  LNN: %.3f   2xN: %.3f   2xN strict: %.3f\n",
                    qftopt::qftLnnButterfly(n).depth() /
                        static_cast<double>(n),
                    qftopt::qftGrid2xnMixed(n).depth() /
                        static_cast<double>(n),
                    qftopt::qftGrid2xnUnmixed(n).depth() /
                        static_cast<double>(n));
    }
    std::printf("all schedules validated: %s\n",
                all_valid ? "yes" : "NO");
    return all_valid ? 0 : 1;
}
